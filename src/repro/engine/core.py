"""The resumable experiment engine.

:class:`Engine` evaluates declarative :class:`~repro.engine.spec`
objects: it plans contiguous shards over each data point's task sets,
answers as many shards as possible from the content-addressed
:class:`~repro.engine.store.ResultStore`, computes the rest (inline or
via a ``ProcessPoolExecutor``), and **checkpoints every computed shard
the moment it finishes** — an interrupted ``repro-mc all --sets 2000``
resumes from the completed shards instead of starting over.

Determinism: every task set ``i`` of a point is generated from
``SeedSequence(seed, spawn_key=(i,))``, shards are merged in ascending
``start`` order, and finalization uses ``math.fsum`` (exactly rounded),
so serial, parallel, cold, and warm (fully cached) runs produce
bit-identical artifacts.
"""

from __future__ import annotations

import importlib
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.engine.artifact import PointResult, SweepArtifact
from repro.engine.spec import ExperimentSpec, PointSpec, SchemeSpec, plan_shards
from repro.engine.store import ResultStore, shard_key
from repro.gen.generator import generate_taskset
from repro.gen.params import WorkloadConfig
from repro.metrics.aggregate import SchemeAccumulator, SchemeStats
from repro.obs import runtime as obs
from repro.obs.metrics import Histogram, Summary
from repro.partition.backend import get_backend
from repro.partition.probe import probe_implementation, use_probe_implementation
from repro.types import ReproError

__all__ = [
    "Engine",
    "EngineRunStats",
    "ShardKind",
    "register_shard_kind",
    "shard_kind",
    "run_experiment",
]

#: Progress hook: called with one event dict per shard / point; see
#: :meth:`Engine._emit` for the event shapes.  Hooks are *advisory*: an
#: exception raised by a hook is caught, warned about once, and disables
#: the hook for the rest of the run — it never aborts a sweep
#: (``KeyboardInterrupt``/``SystemExit`` still propagate).
ProgressHook = Callable[[dict], None]


@dataclass
class EngineRunStats:
    """Observability counters for one engine lifetime.

    Shard timings are reported twice, bounded either way:

    * ``shard_seconds`` — the legacy :class:`~repro.obs.Summary`
      (reservoir p50/p95), kept for API back-compat.  Its percentiles
      are **deprecated** in dumps: the reservoir decimates on long
      sweeps and its merge is order-dependent.
    * ``shard_seconds_hist`` — the exact log-bucket
      :class:`~repro.obs.Histogram`: fixed global edges, so percentiles
      are stable at ~1.78x bucket resolution and merges across worker
      processes are exactly associative (pinned by a hypothesis
      property in ``tests/engine/``).  Prefer these numbers.
    """

    points: int = 0
    shards_planned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    shards_computed: int = 0
    compute_seconds: float = 0.0
    worker_retries: int = 0
    shard_seconds: Summary = field(
        default_factory=lambda: Summary("engine.shard_seconds")
    )
    shard_seconds_hist: Histogram = field(
        default_factory=lambda: Histogram("engine.shard_seconds")
    )

    def as_dict(self) -> dict:
        return {
            "points": self.points,
            "shards_planned": self.shards_planned,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "shards_computed": self.shards_computed,
            "compute_seconds": self.compute_seconds,
            "worker_retries": self.worker_retries,
            "shard_seconds": self.shard_seconds.as_dict(),
            "shard_seconds_hist": self.shard_seconds_hist.as_dict(),
        }


def _generate_timed(config: WorkloadConfig, rng):
    """Generate one task set, attributing the time to a ``gen.taskset``
    aggregate child of the enclosing shard span (when instrumented)."""
    if not obs.OBS.enabled:
        return generate_taskset(config, rng)
    t0 = time.perf_counter()
    taskset = generate_taskset(config, rng)
    obs.add_span_time("gen.taskset", time.perf_counter() - t0)
    return taskset


def _run_stats_shard(
    config: WorkloadConfig,
    schemes: tuple[SchemeSpec, ...],
    seed: int,
    start: int,
    count: int,
) -> list[SchemeAccumulator]:
    """Evaluate task sets ``start .. start+count-1`` of a stats point."""
    partitioners = [(spec.label, spec.build()) for spec in schemes]
    accs = {label: SchemeAccumulator(label) for label, _ in partitioners}
    for i in range(start, start + count):
        rng = np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(i,)))
        taskset = _generate_timed(config, rng)
        for label, partitioner in partitioners:
            result = partitioner.partition(taskset, config.cores)
            # Accumulators are keyed by label, which may differ from the
            # partitioner's registry name (e.g. alpha variants).
            accs[label].add(result, check_scheme=False)
    return list(accs.values())


def _run_h2h_shard(
    config: WorkloadConfig,
    schemes: tuple[SchemeSpec, ...],
    seed: int,
    start: int,
    count: int,
) -> dict:
    """Pairwise dominance tallies over one shard of the common batch."""
    partitioners = [(spec.label, spec.build()) for spec in schemes]
    labels = [label for label, _ in partitioners]
    accepted = {label: 0 for label in labels}
    wins = {a: {b: 0 for b in labels if b != a} for a in labels}
    for i in range(start, start + count):
        rng = np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(i,)))
        taskset = _generate_timed(config, rng)
        outcome = {
            label: p.partition(taskset, config.cores).schedulable
            for label, p in partitioners
        }
        for a in labels:
            accepted[a] += outcome[a]
            for b in labels:
                if a != b and outcome[a] and not outcome[b]:
                    wins[a][b] += 1
    return {"labels": labels, "accepted": accepted, "wins": wins, "sets": count}


@dataclass(frozen=True)
class ShardKind:
    """How the engine runs, persists, and merges one kind of shard.

    ``run(config, schemes, seed, start, count)`` evaluates one shard;
    ``encode(result)`` / ``decode(payload)`` convert it to/from the
    strict-JSON form the :class:`ResultStore` checkpoints (``encode``
    must stamp ``{"kind": name}`` so ``decode`` can reject mismatched
    entries); ``merge(point, shards)`` folds the ascending-``start``
    shard list into the point result.
    """

    name: str
    run: Callable
    encode: Callable[[object], dict]
    decode: Callable[[dict], object]
    merge: Callable[[PointSpec, list], object]


_SHARD_KINDS: dict[str, ShardKind] = {}

#: Kinds whose implementation lives in a package the engine must not
#: import eagerly (it would be a circular / upward dependency).  Looked
#: up on first use — including inside spawned worker processes, whose
#: interpreters start with only the engine imported.
_KIND_PROVIDERS = {
    "validate": "repro.validate.fuzz",
    "dynsim": "repro.experiments.dynamic",
}


def _shard_run_kwargs(params: tuple[tuple[str, object], ...]) -> dict:
    """Kind-specific knobs as runner kwargs.

    Only kinds that declare :attr:`PointSpec.params` receive the extra
    ``params`` argument, so the legacy 5-argument runner signature (and
    with it every existing shard hash) is untouched.
    """
    return {"params": dict(params)} if params else {}


def register_shard_kind(
    name: str, *, run: Callable, encode: Callable, decode: Callable, merge: Callable
) -> None:
    """Register (or idempotently re-register) a point-evaluation mode."""
    _SHARD_KINDS[name] = ShardKind(
        name=name, run=run, encode=encode, decode=decode, merge=merge
    )


def shard_kind(name: str) -> ShardKind:
    """Resolve a kind, importing its provider module on first use."""
    kind = _SHARD_KINDS.get(name)
    if kind is None and name in _KIND_PROVIDERS:
        importlib.import_module(_KIND_PROVIDERS[name])
        kind = _SHARD_KINDS.get(name)
    if kind is None:
        raise ReproError(
            f"unknown shard kind {name!r}; registered: {sorted(_SHARD_KINDS)}"
        )
    return kind


def _run_shard_job(
    kind: str,
    config: WorkloadConfig,
    schemes: tuple[SchemeSpec, ...],
    seed: int,
    start: int,
    count: int,
    collect_metrics: bool,
    probe_impl: str = "batch",
    params: tuple[tuple[str, object], ...] = (),
):
    """Worker-process entry point: run one shard, optionally with metrics.

    ``probe_impl`` is passed explicitly because contextvars do not cross
    the ``ProcessPoolExecutor`` boundary: a worker interpreter starts on
    the default backend, so the parent's selection must ride the job
    arguments (it is also part of the shard key, so stores never mix
    backends).

    When the parent engine runs instrumented, each worker evaluates its
    shard inside :func:`repro.obs.collect` (a fresh registry) and ships
    the registry dump *and its completed span records* back with the
    result; the parent merges the dump and re-roots the spans under its
    own ``engine.shard`` span with :func:`repro.obs.adopt_spans`, so
    probe/Theorem-1/partition counters and the trace tree both survive
    the process boundary.  Returns
    ``(result, metrics_dump_or_None, span_records_or_None)``.
    """
    run_shard = shard_kind(kind).run
    extra = _shard_run_kwargs(params)
    with use_probe_implementation(probe_impl):
        if not collect_metrics:
            return (
                run_shard(config, schemes, seed, start, count, **extra),
                None,
                None,
            )
        with obs.collect() as registry:
            with obs.span(
                "engine.shard.compute", set_start=start, set_count=count
            ):
                result = run_shard(config, schemes, seed, start, count, **extra)
            return result, registry.dump(), obs.drain_spans()


def _encode_stats(result) -> dict:
    return {"kind": "stats", "accumulators": [a.to_dict() for a in result]}


def _encode_h2h(result) -> dict:
    return {"kind": "h2h", **result}


def _checked_kind(kind: str, payload: dict) -> dict:
    if payload.get("kind") != kind:
        raise ReproError(
            f"stored shard kind {payload.get('kind')!r} != requested {kind!r}"
        )
    return payload


def _decode_stats(payload: dict):
    payload = _checked_kind("stats", payload)
    return [SchemeAccumulator.from_dict(d) for d in payload["accumulators"]]


def _decode_h2h(payload: dict):
    payload = _checked_kind("h2h", payload)
    return {
        "labels": list(payload["labels"]),
        "accepted": dict(payload["accepted"]),
        "wins": {a: dict(row) for a, row in payload["wins"].items()},
        "sets": int(payload["sets"]),
    }


def _merge_stats(point: PointSpec, shards: list) -> dict[str, SchemeStats]:
    merged = {label: SchemeAccumulator(label) for label in point.labels}
    for shard in shards:
        for acc in shard:
            merged[acc.scheme].merge(acc)
    return {label: merged[label].finalize() for label in point.labels}


def _merge_h2h(point: PointSpec, shards: list) -> dict:
    labels = list(point.labels)
    accepted = {label: 0 for label in labels}
    wins = {a: {b: 0 for b in labels if b != a} for a in labels}
    sets = 0
    for shard in shards:
        sets += shard["sets"]
        for a in labels:
            accepted[a] += shard["accepted"][a]
            for b, n in shard["wins"][a].items():
                wins[a][b] += n
    return {"labels": labels, "accepted": accepted, "wins": wins, "sets": sets}


register_shard_kind(
    "stats",
    run=_run_stats_shard,
    encode=_encode_stats,
    decode=_decode_stats,
    merge=_merge_stats,
)
register_shard_kind(
    "h2h",
    run=_run_h2h_shard,
    encode=_encode_h2h,
    decode=_decode_h2h,
    merge=_merge_h2h,
)


class Engine:
    """Evaluates :class:`PointSpec` / :class:`ExperimentSpec` objects.

    Parameters
    ----------
    jobs:
        Worker processes per point; 1 (default) runs inline — results
        are bit-identical either way.  ``None`` uses ``os.cpu_count()``.
    store:
        Optional :class:`ResultStore` (or a path, coerced).  With a
        store, completed shards are checkpointed as they finish and
        later runs resume from them.
    progress:
        Optional hook receiving one event dict per point/shard.
    probe_impl:
        Probe backend every shard evaluates under (and is keyed by in
        the store).  ``None`` (default) resolves the ambient selection
        (:func:`repro.partition.probe.probe_implementation`) at each
        ``evaluate`` call, so ``with use_probe_implementation(...)``
        around a sweep is honoured — including inside worker processes,
        which receive the resolved name explicitly because contextvars
        do not cross the pool boundary.
    """

    def __init__(
        self,
        *,
        jobs: int | None = 1,
        store: ResultStore | str | os.PathLike | None = None,
        progress: ProgressHook | None = None,
        probe_impl: str | None = None,
    ) -> None:
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        if probe_impl is not None:
            get_backend(probe_impl)  # fail fast on unknown names
        self.jobs = jobs
        self.store = store
        self.progress = progress
        self.probe_impl = probe_impl
        self.stats = EngineRunStats()

    def _resolved_impl(self) -> str:
        return self.probe_impl or probe_implementation()

    # -- observability -------------------------------------------------

    def _emit(self, event: str, **payload) -> None:
        """Fan one engine event out to the obs sink and the progress hook.

        Structured telemetry goes through :func:`repro.obs.emit` (a
        no-op unless instrumentation is enabled with a sink).  The
        legacy dict-based ``progress`` hook still fires for rendering,
        but it can no longer abort a sweep: the first exception it
        raises is converted into a single ``RuntimeWarning`` and the
        hook is disabled for the rest of the run.
        """
        obs.emit(f"engine.{event}", **payload)
        hook = self.progress
        if hook is None:
            return
        try:
            hook({"event": event, **payload})
        except Exception as exc:
            self.progress = None
            warnings.warn(
                f"progress hook raised {exc!r}; "
                "disabling the hook for the rest of this run",
                RuntimeWarning,
                stacklevel=2,
            )

    def _record_shard(self, seconds: float) -> None:
        self.stats.shards_computed += 1
        self.stats.compute_seconds += seconds
        self.stats.shard_seconds.observe(seconds)
        self.stats.shard_seconds_hist.observe(seconds)
        if obs.OBS.enabled:
            obs.counter("engine.shards_computed").inc()
            obs.summary("engine.shard_seconds").observe(seconds)
            obs.histogram("engine.shard_seconds").observe(seconds)

    # -- shard execution ----------------------------------------------

    def _effective_jobs(self, sets: int) -> int:
        jobs = os.cpu_count() or 1 if self.jobs is None else self.jobs
        return max(1, min(jobs, sets))

    def _checkpoint(
        self, point: PointSpec, start: int, count: int, result, impl: str
    ) -> None:
        if self.store is not None:
            with obs.span("engine.store.put"):
                self.store.put(
                    shard_key(point, start, count, probe_impl=impl),
                    shard_kind(point.kind).encode(result),
                )

    def _compute_missing(
        self,
        point: PointSpec,
        missing: list[tuple[int, int]],
        jobs: int,
        impl: str,
    ) -> dict[int, object]:
        """Run the uncached shards, checkpointing each as it completes."""
        run_shard = shard_kind(point.kind).run
        extra = _shard_run_kwargs(point.params)
        results: dict[int, object] = {}

        def finish(start: int, count: int, result, seconds: float) -> None:
            self._checkpoint(point, start, count, result, impl)
            self._record_shard(seconds)
            results[start] = result
            self._emit(
                "shard", start=start, count=count, cached=False, seconds=seconds
            )

        if jobs == 1 or len(missing) == 1:
            # Inline execution: metrics (if enabled) accumulate straight
            # into the parent registry — no transfer step needed.
            with use_probe_implementation(impl):
                for start, count in missing:
                    t0 = time.perf_counter()
                    with obs.span(
                        "engine.shard", set_start=start, set_count=count
                    ):
                        result = run_shard(
                            point.config,
                            point.schemes,
                            point.seed,
                            start,
                            count,
                            **extra,
                        )
                    finish(start, count, result, time.perf_counter() - t0)
            return results

        collect_metrics = obs.OBS.enabled
        with ProcessPoolExecutor(max_workers=min(jobs, len(missing))) as pool:
            with obs.span("engine.shard.submit", shards=len(missing)):
                t_submit = time.time()
                futures = [
                    pool.submit(
                        _run_shard_job,
                        point.kind,
                        point.config,
                        point.schemes,
                        point.seed,
                        start,
                        count,
                        collect_metrics,
                        impl,
                        point.params,
                    )
                    for start, count in missing
                ]
            t0 = time.perf_counter()
            for future, (start, count) in zip(futures, missing):
                span_records = None
                try:
                    with obs.span(
                        "engine.shard.receive", set_start=start, set_count=count
                    ):
                        result, metrics_dump, span_records = future.result()
                except BrokenProcessPool as pool_exc:
                    # A crashed worker poisons the whole pool and every
                    # pending future; salvage the batch by re-running
                    # this shard inline (the shard is self-seeded, so
                    # the retry is bit-identical to a worker run).
                    self.stats.worker_retries += 1
                    if obs.OBS.enabled:
                        obs.counter("engine.worker_retries").inc()
                    self._emit(
                        "worker_retry", start=start, count=count, error=repr(pool_exc)
                    )
                    try:
                        with obs.span(
                            "engine.shard",
                            set_start=start,
                            set_count=count,
                            retried=True,
                        ), use_probe_implementation(impl):
                            result = run_shard(
                                point.config,
                                point.schemes,
                                point.seed,
                                start,
                                count,
                                **extra,
                            )
                        metrics_dump = None  # inline retry fed the registry
                        span_records = None
                    except Exception as retry_exc:
                        raise ReproError(
                            f"worker shard [{start}, {start + count}) crashed"
                            f" ({pool_exc!r}) and the inline retry failed"
                        ) from retry_exc
                else:
                    # The shard's submit->receive window can't be a
                    # ``with`` block (the windows of concurrent shards
                    # overlap), so record it explicitly and re-root the
                    # worker's spans under it.
                    if obs.OBS.enabled:
                        shard_span = obs.record_span(
                            "engine.shard",
                            start=t_submit,
                            seconds=time.time() - t_submit,
                            set_start=start,
                            set_count=count,
                        )
                        if span_records:
                            obs.adopt_spans(span_records, shard_span)
                if metrics_dump is not None and obs.OBS.enabled:
                    obs.OBS.registry.merge(metrics_dump)
                t1 = time.perf_counter()
                finish(start, count, result, t1 - t0)
                t0 = t1
        return results

    # -- public API ----------------------------------------------------

    def evaluate(self, point: PointSpec):
        """Evaluate one data point, resuming from checkpointed shards.

        Returns ``dict[label, SchemeStats]`` for ``kind="stats"`` points,
        the merged dominance payload for ``kind="h2h"`` points, and the
        merged campaign payload for ``kind="validate"`` points.
        """
        with obs.span("engine.point", kind=point.kind, sets=point.sets):
            kind = shard_kind(point.kind)
            impl = self._resolved_impl()
            jobs = self._effective_jobs(point.sets)
            shards = plan_shards(point.sets, jobs)
            self.stats.points += 1
            self.stats.shards_planned += len(shards)
            # The ETA anchor for live dashboards (repro-mc top): how
            # much work this point holds and how wide it fans out.
            self._emit(
                "point_plan",
                kind=point.kind,
                sets=point.sets,
                shards=len(shards),
                jobs=jobs,
            )

            results: dict[int, object] = {}
            missing: list[tuple[int, int]] = []
            for start, count in shards:
                if self.store is not None:
                    with obs.span("engine.store.get"):
                        cached = self.store.get(
                            shard_key(point, start, count, probe_impl=impl)
                        )
                else:
                    cached = None
                if cached is not None:
                    results[start] = kind.decode(cached)
                    self.stats.cache_hits += 1
                    if obs.OBS.enabled:
                        obs.counter("engine.cache_hits").inc()
                    self._emit(
                        "shard", start=start, count=count, cached=True, seconds=0.0
                    )
                else:
                    if self.store is not None:
                        self.stats.cache_misses += 1
                        if obs.OBS.enabled:
                            obs.counter("engine.cache_misses").inc()
                    missing.append((start, count))

            results.update(
                self._compute_missing(point, missing, jobs, impl)
                if missing
                else {}
            )
            with obs.span("engine.merge", kind=point.kind):
                ordered = [results[start] for start, _ in shards]
                return kind.merge(point, ordered)

    def run(self, spec: ExperimentSpec) -> SweepArtifact:
        """Evaluate a whole figure spec into a :class:`SweepArtifact`."""
        with obs.span("engine.run", figure=spec.figure):
            return self._run(spec)

    def _run(self, spec: ExperimentSpec) -> SweepArtifact:
        rows = []
        self._emit(
            "run_plan",
            figure=spec.figure,
            points=len(spec.points),
            sets_per_point=spec.sets_per_point,
        )
        for value, point in zip(spec.values, spec.points):
            if point.kind != "stats":
                raise ReproError(
                    f"ExperimentSpec points must be kind='stats', got {point.kind!r}"
                )
            self._emit(
                "point", figure=spec.figure, parameter=spec.parameter, value=value
            )
            stats = self.evaluate(point)
            rows.append(
                PointResult(
                    value=value,
                    config=point.config,
                    schemes=point.schemes,
                    stats=tuple(stats[label] for label in point.labels),
                )
            )
        return SweepArtifact(
            figure=spec.figure,
            title=spec.title,
            parameter=spec.parameter,
            values=spec.values,
            sets_per_point=spec.sets_per_point,
            seed=spec.seed,
            rows=tuple(rows),
        )


def run_experiment(
    spec: ExperimentSpec,
    *,
    jobs: int | None = 1,
    store: ResultStore | str | os.PathLike | None = None,
    progress: ProgressHook | None = None,
    probe_impl: str | None = None,
) -> SweepArtifact:
    """One-shot convenience wrapper around :meth:`Engine.run`."""
    return Engine(
        jobs=jobs, store=store, progress=progress, probe_impl=probe_impl
    ).run(spec)
