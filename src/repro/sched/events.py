"""Validated runtime event injection for the partitioned simulator.

The static simulator answers "does this partition survive this
scenario?"; the event runtime answers "does it survive this scenario
*while the world changes underneath it*?".  An
:class:`EventInjectionRuntime` holds a validated, time-sorted registry
of :class:`SimEvent` records and compiles them — against a concrete
partition — into per-core read-only adapters
(:class:`CoreEventView`) that :class:`~repro.sched.CoreSimulator`
consults at its release / dispatch / finish points.  The hot loop never
switches on event kinds; everything data-dependent is resolved up front:

* **validation** happens before any simulation: malformed events
  (negative durations, ends past the horizon, unknown kinds) are
  rejected at construction, unknown task/core ids and impossible
  sequences (failing an offline core, departing twice) are rejected by
  :meth:`EventInjectionRuntime.validate_against` — always as a clean
  :class:`~repro.types.SimulationError`, never a deep numpy traceback;
* **compilation** (:meth:`EventInjectionRuntime.compile`) replays the
  structural events chronologically against a *live* copy of the
  partition: arrivals are admitted through the same Theorem-1 probe
  backends the serve daemon uses (rejections are counted, not crashed),
  core failures displace their residents and re-partition them onto the
  surviving cores best-probe-first (Λ is re-reported before/after), and
  the result is a cumulative membership timeline — per core, who is
  resident when, under which deadline-scaling plan;
* at **run time** the core simulator only reads arrays: per-entry
  join/leave instants, failure instants, a plan schedule, per-entry
  WCET-burst intervals, and (optionally) a mode-recovery tracker.

Event kinds (schema v1)
-----------------------
``wcet_burst``
    While active (``start <= release < end``), the drawn execution
    demand of every job of the matching tasks is multiplied by
    ``factor``.  ``tasks=None`` matches every task (arrivals included);
    an explicit list names base-taskset indices.  Factors of overlapping
    bursts multiply.  A zero-length burst is a legal no-op.
``task_arrival``
    A new :class:`~repro.model.task.MCTask` asks to join at ``start``.
    It is probed on every online core (Eq. (15)); the feasible core
    with the smallest probe wins (ties to the lowest index, exactly as
    ``repro.serve`` places tasks).  No feasible core → the arrival is
    *rejected* and counted, the run continues.
``task_departure``
    The base task ``task_index`` leaves at ``start``: releases strictly
    before the instant still happen, the release at/after it does not.
    An in-flight job of the departing task finishes normally.
``core_failure`` / ``core_hotplug``
    The core goes offline / comes back (empty).  At a failure instant
    every ready/running job on the core is dropped and its residents
    are re-partitioned onto the surviving cores (criticality-aware:
    highest criticality first, then largest utilization), each through
    the probe backend; tasks with no feasible core are *lost* and
    counted.  Displaced tasks restart their release pattern on the new
    core at the failure instant.
``mode_recovery``
    A sanctioned recovery window ``[start, end]``.  Its presence
    switches every simulated core from automatic idle resets to the
    *explicit recovery* protocol: the core returns to mode 1 only at an
    idle instant inside an unconsumed window (pinned against the
    existing ``idle_resets`` machinery — a window consumed while
    already at mode 1 is a no-op, a window no idle instant ever covers
    is missed; all three outcomes are counted).

Instantaneous kinds (arrival / departure / failure / hotplug) must have
``end == start``; windowed kinds (burst / recovery) need
``end >= start``.  All times must satisfy ``0 <= start <= end <=
horizon``.

The runtime is deliberately *static*: every placement decision is made
at compile time, before the first job is drawn, so a compiled schedule
is deterministic, reusable across seeds, and free for the simulation
hot path.  With zero events attached the simulator takes its original
code path untouched — injection is provably zero-impact when unused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro.analysis.virtual_deadlines import (
    VirtualDeadlineAssignment,
    assign_virtual_deadlines,
)
from repro.metrics.core import imbalance_factor
from repro.model.partition import Partition
from repro.model.task import MCTask
from repro.model.taskset import MCTaskSet
from repro.obs.runtime import span
from repro.partition.backend import get_backend
from repro.partition.probe import probe_implementation
from repro.types import SimulationError

__all__ = [
    "EVENT_KINDS",
    "SimEvent",
    "wcet_burst",
    "task_arrival",
    "task_departure",
    "core_failure",
    "core_hotplug",
    "mode_recovery",
    "EventInjectionRuntime",
    "CompiledEvents",
    "CoreEventView",
    "EventOutcome",
    "Membership",
    "identity_plan",
]

#: Recognized event kinds (schema v1).
EVENT_KINDS: tuple[str, ...] = (
    "wcet_burst",
    "task_arrival",
    "task_departure",
    "core_failure",
    "core_hotplug",
    "mode_recovery",
)

def identity_plan(levels: int) -> VirtualDeadlineAssignment:
    """Plain-EDF deadline scaling (no virtual-deadline shrinking)."""
    return VirtualDeadlineAssignment(
        k_star=1,
        lambdas=(0.0,) * levels,
        top_level_scale=1.0,
        levels=levels,
    )


#: Kinds that happen at one instant (``end == start`` enforced).
_INSTANT_KINDS = frozenset(
    {"task_arrival", "task_departure", "core_failure", "core_hotplug"}
)

# Mirror of the simulator's single comparison tolerance (importing it
# from core_sim would create a cycle: core_sim consumes the views built
# here).  Pinned equal by a test.
_TIME_EPS = 1e-9


def _time_after(a: float, b: float) -> bool:
    return a > b + _TIME_EPS


def _time_reached(a: float, b: float) -> bool:
    return a >= b - _TIME_EPS


@dataclass(frozen=True)
class SimEvent:
    """One validated, time-bounded injection event.

    ``start``/``end`` are the event's markers on the cumulative
    timeline.  Kind-specific payload lives in the optional fields; the
    constructor rejects structurally malformed events immediately
    (wrong kind, negative duration, missing/invalid payload) so a bad
    event file can never reach the simulator.
    """

    kind: str
    start: float
    end: float
    #: ``wcet_burst``: multiplier applied to drawn demands (> 0).
    factor: float | None = None
    #: ``wcet_burst``: base-taskset indices to match (``None`` = all).
    tasks: tuple[int, ...] | None = None
    #: ``task_arrival``: the arriving task.
    task: MCTask | None = None
    #: ``task_departure``: base-taskset index of the departing task.
    task_index: int | None = None
    #: ``core_failure`` / ``core_hotplug``: the affected core.
    core: int | None = None

    def __post_init__(self):
        if self.kind not in EVENT_KINDS:
            raise SimulationError(
                f"unknown event kind {self.kind!r}; "
                f"known kinds: {', '.join(EVENT_KINDS)}"
            )
        start, end = float(self.start), float(self.end)
        if not (np.isfinite(start) and np.isfinite(end)):
            raise SimulationError(
                f"{self.kind} event markers must be finite, "
                f"got start={self.start}, end={self.end}"
            )
        if start < 0.0:
            raise SimulationError(
                f"{self.kind} event starts before time 0 (start={start})"
            )
        if end < start:
            raise SimulationError(
                f"{self.kind} event has negative duration "
                f"(start={start}, end={end})"
            )
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "end", end)
        if self.kind in _INSTANT_KINDS and end != start:
            raise SimulationError(
                f"{self.kind} is instantaneous; end must equal start "
                f"(got start={start}, end={end})"
            )
        if self.kind == "wcet_burst":
            if self.factor is None or not np.isfinite(self.factor):
                raise SimulationError("wcet_burst requires a finite factor")
            object.__setattr__(self, "factor", float(self.factor))
            if self.factor <= 0.0:
                raise SimulationError(
                    f"wcet_burst factor must be positive, got {self.factor}"
                )
            if self.tasks is not None:
                idx = tuple(int(i) for i in self.tasks)
                if any(i < 0 for i in idx):
                    raise SimulationError(
                        f"wcet_burst task indices must be >= 0, got {idx}"
                    )
                object.__setattr__(self, "tasks", idx)
        elif self.kind == "task_arrival":
            if not isinstance(self.task, MCTask):
                raise SimulationError("task_arrival requires an MCTask payload")
        elif self.kind == "task_departure":
            if self.task_index is None or int(self.task_index) < 0:
                raise SimulationError(
                    "task_departure requires a task_index >= 0, "
                    f"got {self.task_index}"
                )
            object.__setattr__(self, "task_index", int(self.task_index))
        elif self.kind in ("core_failure", "core_hotplug"):
            if self.core is None or int(self.core) < 0:
                raise SimulationError(
                    f"{self.kind} requires a core index >= 0, got {self.core}"
                )
            object.__setattr__(self, "core", int(self.core))


# ----------------------------------------------------------------------
# Convenience constructors (the JSON loader and tests go through these)
# ----------------------------------------------------------------------
def wcet_burst(
    start: float,
    end: float,
    factor: float,
    tasks: Sequence[int] | None = None,
) -> SimEvent:
    """Demand multiplier ``factor`` on ``tasks`` while ``start <= t < end``."""
    return SimEvent(
        kind="wcet_burst",
        start=start,
        end=end,
        factor=factor,
        tasks=None if tasks is None else tuple(tasks),
    )


def task_arrival(time: float, task: MCTask) -> SimEvent:
    """``task`` asks to join the system at ``time``."""
    return SimEvent(kind="task_arrival", start=time, end=time, task=task)


def task_departure(time: float, task_index: int) -> SimEvent:
    """Base task ``task_index`` leaves the system at ``time``."""
    return SimEvent(
        kind="task_departure", start=time, end=time, task_index=task_index
    )


def core_failure(time: float, core: int) -> SimEvent:
    """Core ``core`` goes offline at ``time`` (residents re-partitioned)."""
    return SimEvent(kind="core_failure", start=time, end=time, core=core)


def core_hotplug(time: float, core: int) -> SimEvent:
    """Core ``core`` comes back online (empty) at ``time``."""
    return SimEvent(kind="core_hotplug", start=time, end=time, core=core)


def mode_recovery(start: float, end: float) -> SimEvent:
    """Sanctioned recovery-to-low window ``[start, end]``."""
    return SimEvent(kind="mode_recovery", start=start, end=end)


# ----------------------------------------------------------------------
# Compiled artifacts consumed by the simulators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Membership:
    """One residency interval of a task on a core: ``[join, leave)``."""

    global_index: int  #: index in the compiled full task set
    task: MCTask
    join: float
    leave: float  #: ``inf`` when the task never leaves the core


class _BurstIndex:
    """Per-entry burst intervals; answers the factor at a release instant."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: tuple[tuple[tuple[float, float, float], ...], ...]):
        self._intervals = intervals

    def factor(self, entry: int, release: float) -> float:
        f = 1.0
        for s, e, factor in self._intervals[entry]:
            if _time_reached(release, s) and _time_after(e, release):
                f *= factor
        return f

    @property
    def intervals(self):
        return self._intervals


class _RecoveryTracker:
    """Consumes ``mode_recovery`` windows against idle intervals.

    One tracker per simulated core per run (windows are per-core
    opportunities: AMC mode is core-local state).
    """

    __slots__ = ("_windows",)

    def __init__(self, windows: Iterable[tuple[float, float]]):
        self._windows = [[float(s), float(e), False] for s, e in windows]

    def claim(self, idle0: float, idle1: float) -> tuple[float | None, int]:
        """Consume every unconsumed window overlapping ``[idle0, idle1)``.

        Returns ``(earliest instant a reset may apply, windows consumed)``.
        """
        if not _time_after(idle1, idle0):
            return None, 0
        applied: float | None = None
        consumed = 0
        for w in self._windows:
            if w[2] or not _time_after(idle1, w[0]) or not _time_reached(w[1], idle0):
                continue
            w[2] = True
            consumed += 1
            at = max(idle0, w[0])
            applied = at if applied is None else min(applied, at)
        return applied, consumed

    def unconsumed(self) -> int:
        return sum(1 for w in self._windows if not w[2])


class CoreEventView:
    """Read-only per-core adapter the core simulator consults.

    Everything is resolved to arrays/instants at compile time; the
    simulator's hot loop reads, it never interprets events.
    """

    __slots__ = (
        "joins",
        "leaves",
        "failures",
        "plan_changes",
        "burst",
        "recovery",
        "tallies",
    )

    def __init__(
        self,
        joins: np.ndarray,
        leaves: np.ndarray,
        failures: tuple[float, ...],
        plan_changes: tuple[tuple[float, VirtualDeadlineAssignment], ...],
        burst: _BurstIndex | None,
        recovery: _RecoveryTracker | None,
        tallies: dict[str, int],
    ):
        self.joins = joins
        self.leaves = leaves
        self.failures = failures
        self.plan_changes = plan_changes
        self.burst = burst
        self.recovery = recovery
        self.tallies = tallies


#: Tallies accumulated while the cores simulate (per run).
_RUN_TALLY_KEYS: tuple[str, ...] = (
    "burst_jobs",
    "failure_drops",
    "mode_recovery_applied",
    "mode_recovery_noop",
    "mode_recovery_missed",
)


@dataclass(frozen=True)
class EventOutcome:
    """What the injected events did to one run.

    ``counters`` merges the compile-time admission/repartition tallies
    with the run-time tallies; :meth:`telemetry` exposes them in obs
    counter naming (``sim.event.*``) so a report and a metrics snapshot
    of the same run reconcile key for key — the event-kind analogue of
    :meth:`repro.sched.SystemReport.telemetry`.
    """

    counters: dict[str, int]
    #: per-arrival records ``{"time", "task", "core"}`` (core None = rejected)
    arrivals: tuple[dict[str, Any], ...] = ()
    #: per-failure records with displaced/replaced/lost counts and Λ before/after
    repartitions: tuple[dict[str, Any], ...] = ()

    def telemetry(self) -> dict[str, int]:
        return {f"sim.event.{k}": int(v) for k, v in sorted(self.counters.items())}


@dataclass(frozen=True)
class CompiledEvents:
    """The static compilation of a runtime against one partition."""

    horizon: float
    cores: int
    full_taskset: MCTaskSet
    #: per core: residency intervals, chronological join order
    memberships: tuple[tuple[Membership, ...], ...]
    #: per core: failure instants strictly inside the horizon, ascending
    failures: tuple[tuple[float, ...], ...]
    #: per core: deadline-scaling plan per membership epoch, as
    #: ``(epoch start, plan)``; ``plan`` is ``None`` when the resident
    #: subset fails the Theorem-1 analysis (the simulator decides
    #: whether that raises or degrades to identity scaling)
    plans: tuple[tuple[tuple[float, VirtualDeadlineAssignment | None], ...], ...]
    #: per core, per membership entry: burst intervals ``(s, e, factor)``
    burst_intervals: tuple[
        tuple[tuple[tuple[float, float, float], ...], ...], ...
    ]
    #: shared recovery windows (per-core trackers are built per run)
    recovery_windows: tuple[tuple[float, float], ...]
    static_counters: dict[str, int]
    arrivals: tuple[dict[str, Any], ...]
    repartitions: tuple[dict[str, Any], ...]

    @property
    def is_trivial(self) -> bool:
        """True when no events were injected (plain simulation path)."""
        return int(self.static_counters.get("injected", 0)) == 0

    def infeasible_epochs(self) -> list[tuple[int, float]]:
        """``(core, epoch start)`` of every resident subset that fails
        the Theorem-1 analysis (arrival admission never creates one, but
        failure re-partitioning onto best-probe cores can)."""
        return [
            (m, t)
            for m, schedule in enumerate(self.plans)
            for t, plan in schedule
            if plan is None
        ]

    def fresh_tallies(self) -> dict[str, int]:
        """A zeroed run-tally dict shared by one run's core views."""
        return {k: 0 for k in _RUN_TALLY_KEYS}

    def core_view(self, core: int, tallies: dict[str, int]) -> CoreEventView | None:
        """The live adapter for ``core``, or ``None`` when it never hosts
        a task (the system simulator skips it entirely)."""
        entries = self.memberships[core]
        if not entries:
            return None
        joins = np.array([e.join for e in entries], dtype=np.float64)
        leaves = np.array([e.leave for e in entries], dtype=np.float64)
        # Plan epochs beyond the first become run-time rebinds; epoch 0
        # is the constructor plan.  Infeasible epochs degrade to
        # identity scaling (plain EDF) — the system simulator raises
        # first unless ``allow_infeasible`` sanctioned them.
        levels = self.full_taskset.levels
        changes = tuple(
            (t, plan if plan is not None else identity_plan(levels))
            for t, plan in self.plans[core][1:]
        )
        burst = (
            _BurstIndex(self.burst_intervals[core])
            if any(self.burst_intervals[core])
            else None
        )
        recovery = (
            _RecoveryTracker(self.recovery_windows)
            if self.recovery_windows
            else None
        )
        return CoreEventView(
            joins=joins,
            leaves=leaves,
            failures=self.failures[core],
            plan_changes=changes,
            burst=burst,
            recovery=recovery,
            tallies=tallies,
        )

    def outcome(self, tallies: dict[str, int]) -> EventOutcome:
        counters = dict(self.static_counters)
        counters.update(tallies)
        return EventOutcome(
            counters=counters,
            arrivals=self.arrivals,
            repartitions=self.repartitions,
        )


# ----------------------------------------------------------------------
# The runtime
# ----------------------------------------------------------------------
class EventInjectionRuntime:
    """Central registry of injection events for one simulated horizon.

    Lifecycle: construct (structural validation) →
    :meth:`validate_against` a partition (id / sequence validation;
    the system simulator calls this on attach, so bad events fail
    *before* any job is drawn) → :meth:`compile` (placement decisions,
    membership timeline, per-event spans) → per-run
    :meth:`CompiledEvents.core_view` adapters.
    """

    def __init__(
        self,
        events: Iterable[SimEvent],
        horizon: float,
        probe_impl: str | None = None,
        rule: str = "max",
    ):
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        self.horizon = float(horizon)
        self.probe_impl = probe_impl
        self.rule = rule
        ordered = sorted(events, key=lambda e: e.start)  # stable: ties keep
        for e in ordered:  # authoring order
            if _time_after(e.end, self.horizon):
                raise SimulationError(
                    f"{e.kind} event ends past the horizon "
                    f"({e.end} > {self.horizon})"
                )
        self.events: tuple[SimEvent, ...] = tuple(ordered)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    def validate_against(self, partition: Partition) -> None:
        """Reject unknown ids and impossible event sequences.

        Cheap (no probes): run at simulator construction so errors
        surface up front, not mid-run.
        """
        n_base = len(partition.taskset)
        cores = partition.cores
        levels = partition.taskset.levels
        online = [True] * cores
        departed: set[int] = set()
        for e in self.events:
            if e.kind == "wcet_burst" and e.tasks is not None:
                for i in e.tasks:
                    if i >= n_base:
                        raise SimulationError(
                            f"wcet_burst names unknown task {i} "
                            f"(task set has {n_base} tasks)"
                        )
            elif e.kind == "task_arrival":
                if e.task.criticality > levels:
                    raise SimulationError(
                        f"task_arrival criticality {e.task.criticality} "
                        f"exceeds the system's K={levels}"
                    )
            elif e.kind == "task_departure":
                if e.task_index >= n_base:
                    raise SimulationError(
                        f"task_departure names unknown task {e.task_index} "
                        f"(task set has {n_base} tasks)"
                    )
                if e.task_index in departed:
                    raise SimulationError(
                        f"task {e.task_index} departs twice (second at "
                        f"t={e.start})"
                    )
                departed.add(e.task_index)
            elif e.kind == "core_failure":
                if e.core >= cores:
                    raise SimulationError(
                        f"core_failure names unknown core {e.core} "
                        f"(system has {cores} cores)"
                    )
                if not online[e.core]:
                    raise SimulationError(
                        f"core {e.core} fails at t={e.start} but is already "
                        "offline"
                    )
                online[e.core] = False
            elif e.kind == "core_hotplug":
                if e.core >= cores:
                    raise SimulationError(
                        f"core_hotplug names unknown core {e.core} "
                        f"(system has {cores} cores)"
                    )
                if online[e.core]:
                    raise SimulationError(
                        f"core {e.core} hotplugs at t={e.start} but is "
                        "already online"
                    )
                online[e.core] = True

    # ------------------------------------------------------------------
    def compile(self, partition: Partition) -> CompiledEvents:
        """Replay the events against ``partition`` and freeze the timeline.

        Deterministic and RNG-free: placement is pure Theorem-1 probing,
        so one compilation serves any number of seeded runs.  Emits one
        ``sim.event.<kind>`` span per event under a
        ``sim.events.compile`` parent when instrumentation is on.
        """
        self.validate_against(partition)
        with span("sim.events.compile", events=len(self.events)):
            return self._compile(partition)

    def _compile(self, partition: Partition) -> CompiledEvents:
        base = partition.taskset
        n_base = len(base)
        cores = partition.cores
        levels = base.levels
        backend = get_backend(
            self.probe_impl if self.probe_impl is not None else probe_implementation()
        )

        arrivals = [e for e in self.events if e.kind == "task_arrival"]
        full = MCTaskSet(
            list(base) + [e.task for e in arrivals], levels=levels
        )
        assignment = [int(c) for c in partition.assignment] + [-1] * len(arrivals)
        live = Partition.from_assignment(full, cores, assignment)

        online = [True] * cores
        # Per-task open residency: global index -> (core, join instant).
        open_slot: dict[int, tuple[int, float]] = {
            i: (assignment[i], 0.0) for i in range(n_base)
        }
        memberships: list[list[Membership]] = [[] for _ in range(cores)]
        failures: list[list[float]] = [[] for _ in range(cores)]
        recovery_windows: list[tuple[float, float]] = []
        bursts: list[SimEvent] = []
        arrival_records: list[dict[str, Any]] = []
        repartition_records: list[dict[str, Any]] = []
        counters: dict[str, int] = {
            "injected": len(self.events),
            "arrival_admitted": 0,
            "arrival_rejected": 0,
            "departures": 0,
            "departure_noop": 0,
            "core_failures": 0,
            "core_hotplugs": 0,
            "displaced": 0,
            "replaced": 0,
            "repartition_lost": 0,
        }
        next_arrival = n_base

        def close(gidx: int, leave: float) -> None:
            core, join = open_slot.pop(gidx)
            memberships[core].append(
                Membership(
                    global_index=gidx, task=full[gidx], join=join, leave=leave
                )
            )

        def best_online_core(gidx: int) -> int | None:
            """Feasible online core with the smallest Eq.-(15) probe
            (ties to the lowest index — the serve daemon's rule)."""
            row = backend.probe(live, gidx, rule=self.rule)
            masked = np.where(
                np.isfinite(row) & np.array(online, dtype=bool), row, np.inf
            )
            if not np.isfinite(masked).any():
                return None
            return int(np.argmin(masked))

        for event in self.events:
            with span(f"sim.event.{event.kind}", t=event.start):
                if event.kind == "wcet_burst":
                    bursts.append(event)
                elif event.kind == "mode_recovery":
                    recovery_windows.append((event.start, event.end))
                elif event.kind == "task_arrival":
                    gidx = next_arrival
                    next_arrival += 1
                    core = best_online_core(gidx)
                    if core is None:
                        counters["arrival_rejected"] += 1
                    else:
                        live.assign(gidx, core)
                        open_slot[gidx] = (core, event.start)
                        counters["arrival_admitted"] += 1
                    arrival_records.append(
                        {
                            "time": event.start,
                            "task": full[gidx].name or f"task{gidx}",
                            "core": core,
                        }
                    )
                elif event.kind == "task_departure":
                    gidx = event.task_index
                    if gidx in open_slot:
                        close(gidx, event.start)
                        live.unassign(gidx)
                        counters["departures"] += 1
                    else:
                        # Lost in an earlier failed re-partition: the
                        # departure has nothing left to remove.
                        counters["departure_noop"] += 1
                elif event.kind == "core_failure":
                    m = event.core
                    counters["core_failures"] += 1
                    online[m] = False
                    if not _time_reached(event.start, self.horizon):
                        failures[m].append(event.start)
                    lam_before = imbalance_factor(
                        live.core_utilizations(self.rule)
                    )
                    displaced = list(live.tasks_on(m))
                    for gidx in displaced:
                        close(gidx, event.start)
                        live.unassign(gidx)
                    # Criticality-aware order: highest criticality
                    # first, then largest own-level utilization — the
                    # most constrained tasks pick their core first.
                    displaced.sort(
                        key=lambda i: (
                            -full[i].criticality,
                            -full[i].utilization(full[i].criticality),
                        )
                    )
                    replaced = lost = 0
                    for gidx in displaced:
                        core = best_online_core(gidx)
                        if core is None:
                            lost += 1
                        else:
                            live.assign(gidx, core)
                            open_slot[gidx] = (core, event.start)
                            replaced += 1
                    counters["displaced"] += len(displaced)
                    counters["replaced"] += replaced
                    counters["repartition_lost"] += lost
                    repartition_records.append(
                        {
                            "time": event.start,
                            "core": m,
                            "displaced": len(displaced),
                            "replaced": replaced,
                            "lost": lost,
                            "lambda_before": lam_before,
                            "lambda_after": imbalance_factor(
                                live.core_utilizations(self.rule)
                            ),
                        }
                    )
                elif event.kind == "core_hotplug":
                    counters["core_hotplugs"] += 1
                    online[event.core] = True

        # Close every residency still open at the horizon.
        for gidx in sorted(open_slot):
            close(gidx, float("inf"))

        membership_tuple = tuple(tuple(ms) for ms in memberships)
        burst_intervals = tuple(
            tuple(
                tuple(
                    (b.start, b.end, b.factor)
                    for b in bursts
                    if b.tasks is None or entry.global_index in b.tasks
                )
                for entry in ms
            )
            for ms in membership_tuple
        )
        plans = tuple(
            _plan_schedule(ms, levels) for ms in membership_tuple
        )
        return CompiledEvents(
            horizon=self.horizon,
            cores=cores,
            full_taskset=full,
            memberships=membership_tuple,
            failures=tuple(tuple(f) for f in failures),
            plans=plans,
            burst_intervals=burst_intervals,
            recovery_windows=tuple(recovery_windows),
            static_counters=counters,
            arrivals=tuple(arrival_records),
            repartitions=tuple(repartition_records),
        )


def _plan_schedule(
    entries: Sequence[Membership], levels: int
) -> tuple[tuple[float, VirtualDeadlineAssignment | None], ...]:
    """Deadline-scaling plan per membership epoch of one core.

    Epoch boundaries are the distinct join/leave instants; the plan of
    an epoch is the Theorem-1 assignment over the tasks resident
    throughout it (identity when the core is empty, ``None`` when the
    resident subset is infeasible — the caller decides what that
    means).
    """
    if not entries:
        return ()
    marks = {0.0}
    for e in entries:
        marks.add(e.join)
        if np.isfinite(e.leave):
            marks.add(e.leave)
    schedule: list[tuple[float, VirtualDeadlineAssignment | None]] = []
    for t in sorted(marks):
        resident = [
            e.task
            for e in entries
            if _time_reached(t, e.join) and _time_after(e.leave, t)
        ]
        if not resident:
            plan: VirtualDeadlineAssignment | None = identity_plan(levels)
        else:
            plan = assign_virtual_deadlines(MCTaskSet(resident, levels=levels))
        schedule.append((t, plan))
    return tuple(schedule)
