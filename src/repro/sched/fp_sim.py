"""Fixed-priority AMC simulation helpers.

Builds a :class:`~repro.sched.CoreSimulator` configured for preemptive
fixed-priority scheduling under the AMC run-time policy: the scheduling
key is the task's static priority (from an
:class:`~repro.analysis.response_time.FPAssignment`) instead of the
EDF-VD virtual deadline; budgets, mode switches, drops and idle resets
behave identically.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.response_time import FPAssignment
from repro.analysis.virtual_deadlines import VirtualDeadlineAssignment
from repro.model.taskset import MCTaskSet
from repro.sched.core_sim import CoreSimulator
from repro.sched.scenario import ExecutionScenario
from repro.types import SimulationError

__all__ = ["fp_core_simulator"]


def fp_core_simulator(
    subset: MCTaskSet,
    assignment: FPAssignment,
    scenario: ExecutionScenario,
    rng: np.random.Generator,
    horizon: float,
    record_trace: bool = False,
) -> CoreSimulator:
    """A core simulator running preemptive fixed-priority + AMC."""
    if sorted(assignment.priorities) != list(range(len(subset))):
        raise SimulationError(
            "priority assignment does not cover the subset's tasks"
        )
    rank = {task: r for r, task in enumerate(assignment.priorities)}
    # Identity deadline plan: FP does not scale deadlines; it is only
    # consulted for the (unused) virtual-deadline path and level count.
    plan = VirtualDeadlineAssignment(
        k_star=1,
        lambdas=(0.0,) * subset.levels,
        top_level_scale=1.0,
        levels=subset.levels,
    )
    return CoreSimulator(
        subset=subset,
        plan=plan,
        scenario=scenario,
        rng=rng,
        horizon=horizon,
        record_trace=record_trace,
        priority_fn=lambda job, mode: rank[job.task_index],
    )
