"""Execution traces for the core simulator.

When tracing is enabled the simulator records every protocol event
(releases, completions, drops, mode switches, idle resets) and the
executed time slices, enough to reconstruct the full schedule — e.g. as
the ASCII timeline of :func:`render_timeline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["EventKind", "TraceEvent", "ExecutionSlice", "Trace", "render_timeline"]


class EventKind(Enum):
    RELEASE = "release"
    COMPLETE = "complete"
    DROP = "drop"
    MODE_UP = "mode_up"
    IDLE_RESET = "idle_reset"
    MISS = "miss"


@dataclass(frozen=True)
class TraceEvent:
    time: float
    kind: EventKind
    task_index: int | None = None  #: None for core-wide events
    mode: int | None = None  #: core mode after the event


@dataclass
class ExecutionSlice:
    start: float
    end: float
    task_index: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """Everything that happened on one core."""

    events: list[TraceEvent]
    slices: list[ExecutionSlice]

    def events_of(self, kind: EventKind) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> dict[str, int]:
        """Event tally keyed by :class:`EventKind` value.

        Every kind appears (zero when absent), so callers can reconcile
        against simulator counters without ``.get`` defaults.  Note that
        MISS events only exist for *completed* late jobs — jobs still
        pending at the horizon are counted in
        :attr:`~repro.sched.CoreReport.misses` but emit no trace event.
        """
        tally = {kind.value: 0 for kind in EventKind}
        for e in self.events:
            tally[e.kind.value] += 1
        return tally

    def busy_time(self) -> float:
        return sum(s.duration for s in self.slices)


def render_timeline(
    trace: Trace, n_tasks: int, until: float, width: int = 80
) -> str:
    """ASCII Gantt chart: one row per task, '#' where it executes.

    Intended for examples and debugging, not for precise measurement —
    each column covers ``until / width`` time units and is marked if the
    task runs at all inside it.
    """
    scale = until / width
    rows = [[" "] * width for _ in range(n_tasks)]
    for s in trace.slices:
        if s.start >= until:
            continue
        # Clamp both ends: a start just below ``until`` can round up to
        # column ``width`` (e.g. 0.8999999999999999 / (0.9 / 3) == 3.0).
        first = min(int(s.start / scale), width - 1)
        last = min(int(max(s.start, min(s.end, until) - 1e-9) / scale), width - 1)
        for col in range(first, last + 1):
            rows[s.task_index][col] = "#"
    mode_row = [" "] * width
    for e in trace.events:
        if e.time >= until:
            continue
        col = min(int(e.time / scale), width - 1)
        if e.kind is EventKind.MODE_UP:
            mode_row[col] = "^"
        elif e.kind is EventKind.IDLE_RESET:
            mode_row[col] = "v"
    lines = [f"t{i:<3}|" + "".join(row) + "|" for i, row in enumerate(rows)]
    lines.append("mode|" + "".join(mode_row) + "|  (^ switch up, v idle reset)")
    return "\n".join(lines)
