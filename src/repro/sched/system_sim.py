"""Multicore partitioned EDF-VD simulation.

Under partitioned scheduling the cores share nothing at run time, so the
system simulator simply runs one :class:`~repro.sched.CoreSimulator` per
non-empty core (each with its own child RNG stream) and aggregates the
reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.virtual_deadlines import assign_virtual_deadlines
from repro.model.partition import Partition
from repro.model.taskset import MCTaskSet
from repro.obs.runtime import OBS, span
from repro.sched.core_sim import TIME_EPS, CoreReport, CoreSimulator
from repro.sched.events import (
    CompiledEvents,
    EventInjectionRuntime,
    EventOutcome,
    identity_plan,
)
from repro.sched.scenario import ExecutionScenario
from repro.types import SimulationError

__all__ = ["SystemSimulator", "SystemReport", "default_horizon"]


def default_horizon(partition: Partition, cycles: float = 20.0) -> float:
    """A pragmatic horizon: ``cycles`` times the longest period.

    Full hyperperiods of the paper's workloads (integer periods up to
    2000) are astronomically long; a few tens of max-period cycles
    exercise every release phase relation that matters in practice.
    """
    if cycles <= 0:
        raise SimulationError(f"cycles must be positive, got {cycles}")
    longest = max((t.period for t in partition.taskset), default=None)
    if longest is None:
        raise SimulationError(
            "cannot derive a horizon from an empty task set; "
            "pass an explicit horizon instead"
        )
    return cycles * longest


@dataclass
class SystemReport:
    """Aggregated simulation outcome for a whole partition."""

    core_reports: list[CoreReport | None]  #: ``None`` for empty cores
    #: what the injected events did (only when a runtime was attached)
    events: EventOutcome | None = None

    @property
    def miss_count(self) -> int:
        return sum(r.miss_count for r in self.core_reports if r is not None)

    @property
    def released(self) -> int:
        return sum(r.released for r in self.core_reports if r is not None)

    @property
    def completed(self) -> int:
        return sum(r.completed for r in self.core_reports if r is not None)

    @property
    def dropped(self) -> int:
        return sum(r.dropped for r in self.core_reports if r is not None)

    @property
    def pending(self) -> int:
        return sum(r.pending for r in self.core_reports if r is not None)

    @property
    def mode_switches(self) -> int:
        return sum(r.mode_switches for r in self.core_reports if r is not None)

    @property
    def idle_resets(self) -> int:
        return sum(r.idle_resets for r in self.core_reports if r is not None)

    @property
    def max_mode(self) -> int:
        return max(
            (r.max_mode for r in self.core_reports if r is not None), default=1
        )

    def all_deadlines_met(self) -> bool:
        return self.miss_count == 0

    def telemetry(self) -> dict[str, int]:
        """System-wide protocol tallies in obs counter naming.

        The keys match the ``sim.*`` counters the core simulator records
        when instrumentation is enabled, so a report and a metrics
        snapshot of the same run reconcile key-for-key.
        """
        return {
            "sim.cores_simulated": sum(
                1 for r in self.core_reports if r is not None
            ),
            "sim.released": self.released,
            "sim.completed": self.completed,
            "sim.dropped": self.dropped,
            "sim.pending": self.pending,
            "sim.censored": sum(
                r.censored for r in self.core_reports if r is not None
            ),
            "sim.mode_up": self.mode_switches,
            "sim.idle_reset": self.idle_resets,
            "sim.deadline_miss": self.miss_count,
        }

    def event_telemetry(self) -> dict[str, int]:
        """``sim.event.*`` tallies of the attached runtime (empty when
        no events were injected into the run)."""
        return {} if self.events is None else self.events.telemetry()


class SystemSimulator:
    """Simulates a complete task-to-core partition.

    Parameters
    ----------
    partition:
        A complete partition (every task assigned).
    scenario:
        Execution-demand scenario shared by all cores.
    horizon:
        Simulated time span; defaults to :func:`default_horizon`.
    allow_infeasible:
        When False (default), a core subset that fails the Theorem-1
        analysis raises :class:`SimulationError` — simulating it would
        have no guarantee to validate.  Failure-injection experiments
        pass True, in which case such cores run plain EDF (identity
        deadline scaling) and misses are expected.
    """

    def __init__(
        self,
        partition: Partition,
        scenario: ExecutionScenario,
        horizon: float | None = None,
        allow_infeasible: bool = False,
        releases=None,
        events: EventInjectionRuntime | None = None,
    ):
        if not partition.is_complete:
            raise SimulationError("partition must assign every task")
        self.partition = partition
        self.scenario = scenario
        self.horizon = (
            default_horizon(partition) if horizon is None else float(horizon)
        )
        self.allow_infeasible = allow_infeasible
        #: arrival model shared by all cores (None = periodic);
        #: see :mod:`repro.sched.releases`.
        self.releases = releases
        #: injected-event runtime (:mod:`repro.sched.events`) or ``None``.
        self.events = events
        self._compiled: CompiledEvents | None = None
        if events is not None:
            if releases is not None:
                raise SimulationError(
                    "event injection requires periodic releases; "
                    "combining it with a release model is not supported"
                )
            if abs(events.horizon - self.horizon) > TIME_EPS:
                raise SimulationError(
                    f"event runtime was validated for horizon "
                    f"{events.horizon} but the simulator runs to "
                    f"{self.horizon}"
                )
            # Up-front: unknown ids / impossible sequences fail here,
            # before any job is drawn.
            events.validate_against(partition)

    def run(self, seed: int | np.random.SeedSequence = 0) -> SystemReport:
        """Simulate every non-empty core; one trace span per core.

        Instrumented, the whole run is a ``sim.system`` span with one
        ``sim.core`` child per simulated core, so a trace shows which
        core dominated the simulation time.
        """
        with span("sim.system", cores=self.partition.cores):
            return self._run(seed)

    def _run(self, seed: int | np.random.SeedSequence) -> SystemReport:
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        children = root.spawn(self.partition.cores)
        compiled = self._compile_events()
        if compiled is not None and not compiled.is_trivial:
            report = self._run_evented(compiled, children)
        else:
            reports: list[CoreReport | None] = []
            for m in range(self.partition.cores):
                subset_indices = self.partition.tasks_on(m)
                if not subset_indices:
                    reports.append(None)
                    continue
                subset = self.partition.taskset.subset(subset_indices)
                plan = assign_virtual_deadlines(subset)
                if plan is None:
                    if not self.allow_infeasible:
                        raise SimulationError(
                            f"core {m} fails the EDF-VD schedulability "
                            "analysis; pass allow_infeasible=True to "
                            "simulate it anyway"
                        )
                    plan = identity_plan(subset.levels)
                sim = CoreSimulator(
                    subset=subset,
                    plan=plan,
                    scenario=self.scenario,
                    rng=np.random.default_rng(children[m]),
                    horizon=self.horizon,
                    releases=self.releases,
                )
                with span("sim.core", core=m, tasks=len(subset_indices)):
                    reports.append(sim.run())
            report = SystemReport(core_reports=reports)
            if compiled is not None:
                # Zero events: the simulation above is the original
                # static path bit for bit; the outcome just says so.
                report.events = compiled.outcome(compiled.fresh_tallies())
        if report.events is not None and OBS.enabled:
            reg = OBS.registry
            for name, value in report.events.telemetry().items():
                reg.counter(name).inc(value)
        return report

    def _compile_events(self) -> CompiledEvents | None:
        """Compile the attached runtime once (lazily, so the per-event
        spans land inside the caller's instrumentation window)."""
        if self.events is None:
            return None
        if self._compiled is None:
            self._compiled = self.events.compile(self.partition)
        return self._compiled

    def _run_evented(
        self,
        compiled: CompiledEvents,
        children: list[np.random.SeedSequence],
    ) -> SystemReport:
        infeasible = compiled.infeasible_epochs()
        if infeasible and not self.allow_infeasible:
            core, at = infeasible[0]
            raise SimulationError(
                f"re-partitioned core {core} fails the EDF-VD "
                f"schedulability analysis from t={at}; pass "
                "allow_infeasible=True to simulate it anyway"
            )
        levels = compiled.full_taskset.levels
        tallies = compiled.fresh_tallies()
        reports: list[CoreReport | None] = []
        for m in range(compiled.cores):
            view = compiled.core_view(m, tallies)
            if view is None:
                reports.append(None)
                continue
            entries = compiled.memberships[m]
            subset = MCTaskSet([e.task for e in entries], levels=levels)
            plan0 = compiled.plans[m][0][1]
            if plan0 is None:
                plan0 = identity_plan(levels)
            sim = CoreSimulator(
                subset=subset,
                plan=plan0,
                scenario=self.scenario,
                rng=np.random.default_rng(children[m]),
                horizon=self.horizon,
                events=view,
            )
            with span("sim.core", core=m, tasks=len(entries)):
                reports.append(sim.run())
        return SystemReport(
            core_reports=reports, events=compiled.outcome(tallies)
        )
