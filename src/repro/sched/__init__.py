"""Discrete-event runtime simulation of partitioned EDF-VD with AMC."""

from repro.sched.core_sim import CoreReport, CoreSimulator, DeadlineMiss
from repro.sched.events import (
    EVENT_KINDS,
    EventInjectionRuntime,
    EventOutcome,
    SimEvent,
    core_failure,
    core_hotplug,
    mode_recovery,
    task_arrival,
    task_departure,
    wcet_burst,
)
from repro.sched.job import Job
from repro.sched.scenario import (
    ExecutionScenario,
    FaultyScenario,
    HonestScenario,
    LevelScenario,
    RandomScenario,
)
from repro.sched.fp_sim import fp_core_simulator
from repro.sched.global_sim import GlobalSimulator, dual_global_plan
from repro.sched.releases import PeriodicReleases, ReleaseModel, SporadicReleases
from repro.sched.system_sim import SystemReport, SystemSimulator, default_horizon
from repro.sched.trace import (
    EventKind,
    ExecutionSlice,
    Trace,
    TraceEvent,
    render_timeline,
)

__all__ = [
    "CoreReport",
    "CoreSimulator",
    "DeadlineMiss",
    "EVENT_KINDS",
    "EventInjectionRuntime",
    "EventKind",
    "EventOutcome",
    "SimEvent",
    "ExecutionScenario",
    "ExecutionSlice",
    "FaultyScenario",
    "GlobalSimulator",
    "HonestScenario",
    "Job",
    "LevelScenario",
    "PeriodicReleases",
    "ReleaseModel",
    "SporadicReleases",
    "RandomScenario",
    "SystemReport",
    "SystemSimulator",
    "Trace",
    "TraceEvent",
    "core_failure",
    "core_hotplug",
    "default_horizon",
    "dual_global_plan",
    "fp_core_simulator",
    "mode_recovery",
    "render_timeline",
    "task_arrival",
    "task_departure",
    "wcet_burst",
]
