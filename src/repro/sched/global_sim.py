"""Global multiprocessor EDF-VD + AMC simulation.

Unlike the partitioned simulator (:mod:`repro.sched.core_sim`), all
``m`` processors share one ready queue: at every scheduling point the
``m`` highest-priority ready jobs run in parallel (job-level parallelism
is 1 — a job occupies at most one processor).  The AMC mode is
system-wide: any running job exceeding its current-level budget raises
the mode for the whole platform, dropping lower-criticality jobs
everywhere; an all-idle instant resets to mode 1.

Priorities come from the same deadline-scaling plan protocol as the
partitioned simulator (``plan.task_scale``), so the global dual-
criticality EDF-VD plan can be expressed with
:class:`~repro.analysis.dbf.DualPerTaskPlan` (HI deadlines shrunk by the
admission's ``x`` factor in LO mode, restored in HI mode).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.dbf import DualPerTaskPlan
from repro.model.taskset import MCTaskSet
from repro.sched.core_sim import CoreReport, DeadlineMiss, TIME_EPS
from repro.sched.job import Job
from repro.sched.scenario import ExecutionScenario
from repro.types import ModelError, SimulationError

__all__ = ["GlobalSimulator", "dual_global_plan"]


def dual_global_plan(taskset: MCTaskSet, x_factor: float) -> DualPerTaskPlan:
    """The global dual-criticality EDF-VD deadline plan for ``x_factor``."""
    if taskset.levels != 2:
        raise ModelError(
            f"dual_global_plan needs K=2, got K={taskset.levels}"
        )
    if not 0.0 < x_factor <= 1.0:
        raise ModelError(f"x factor must be in (0, 1], got {x_factor}")
    deadlines = tuple(
        t.period * (x_factor if t.criticality >= 2 else 1.0) for t in taskset
    )
    return DualPerTaskPlan(
        deadlines=deadlines, periods=tuple(t.period for t in taskset)
    )


class GlobalSimulator:
    """Simulates global preemptive EDF-VD + AMC on ``processors`` CPUs."""

    def __init__(
        self,
        taskset: MCTaskSet,
        processors: int,
        plan,
        scenario: ExecutionScenario,
        rng: np.random.Generator,
        horizon: float,
        releases=None,
    ):
        if processors < 1:
            raise SimulationError(f"processors must be >= 1, got {processors}")
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        if plan.levels != taskset.levels:
            raise SimulationError(
                f"plan has {plan.levels} levels but task set has {taskset.levels}"
            )
        self.taskset = taskset
        self.processors = int(processors)
        self.plan = plan
        self.scenario = scenario
        self.rng = rng
        self.horizon = float(horizon)
        self.releases = releases

    # ------------------------------------------------------------------
    def run(self) -> CoreReport:
        taskset, plan, horizon = self.taskset, self.plan, self.horizon
        m = self.processors
        report = CoreReport(horizon=horizon)
        n = len(taskset)
        periods = np.array([t.period for t in taskset], dtype=np.float64)
        levels = taskset.criticalities
        next_release = np.zeros(n, dtype=np.float64)

        mode = 1
        time = 0.0
        seq = 0
        ready: list[Job] = []

        def key(job: Job) -> tuple[float, int]:
            scale = plan.task_scale(job.task_index, int(job.level), mode)
            return (job.release + scale * (job.deadline - job.release), job.seq)

        def release_due(now: float) -> None:
            nonlocal seq
            for i in np.flatnonzero(next_release <= now + TIME_EPS):
                task = taskset[int(i)]
                r = float(next_release[i])
                exec_time = float(self.scenario.draw(task, self.rng))
                if exec_time <= 0:
                    raise SimulationError(
                        f"scenario produced non-positive execution time {exec_time}"
                    )
                job = Job(
                    task_index=int(i),
                    level=int(levels[i]),
                    release=r,
                    deadline=r + float(periods[i]),
                    exec_time=exec_time,
                    seq=seq,
                )
                seq += 1
                report.released += 1
                if job.deadline > horizon + TIME_EPS:
                    report.censored += 1
                if job.level < mode:
                    job.dropped_at = now
                    report.dropped += 1
                else:
                    ready.append(job)
                if self.releases is None:
                    gap = float(periods[i])
                else:
                    gap = float(self.releases.interarrival(task, self.rng))
                    if gap < float(periods[i]) - TIME_EPS:
                        raise SimulationError(
                            "release model produced an interarrival below"
                            f" the period ({gap} < {periods[i]})"
                        )
                next_release[i] = r + gap

        def raise_mode(now: float) -> None:
            nonlocal mode
            mode += 1
            report.mode_switches += 1
            report.max_mode = max(report.max_mode, mode)
            survivors = []
            for job in ready:
                if job.level < mode:
                    job.dropped_at = now
                    report.dropped += 1
                else:
                    survivors.append(job)
            ready[:] = survivors

        def finish(job: Job, now: float) -> None:
            job.completion = now
            report.completed += 1
            if job.deadline <= horizon + TIME_EPS and now > job.deadline + TIME_EPS:
                report.misses.append(
                    DeadlineMiss(
                        task_index=job.task_index,
                        level=job.level,
                        release=job.release,
                        deadline=job.deadline,
                        lateness=now - job.deadline,
                    )
                )

        while time < horizon - TIME_EPS:
            release_due(time)
            if not ready:
                if mode != 1:
                    mode = 1
                    report.idle_resets += 1
                time = min(float(next_release.min()), horizon)
                continue

            ready.sort(key=key)
            running = ready[:m]
            next_event = min(float(next_release.min()), horizon)

            # Earliest interesting instant among the running jobs.
            run_until = next_event
            trigger_job: Job | None = None
            for job in running:
                completion_at = time + job.remaining
                if completion_at < run_until - TIME_EPS:
                    run_until = completion_at
                    trigger_job = None  # completion handled below anyway
                if job.level > mode:
                    budget = taskset[job.task_index].wcet(mode)
                    if job.exec_time > budget + TIME_EPS:
                        if job.executed >= budget - TIME_EPS:
                            boundary = time
                        else:
                            boundary = time + (budget - job.executed)
                        if boundary < run_until - TIME_EPS:
                            run_until = boundary
                            trigger_job = job

            delta = max(run_until - time, 0.0)
            for job in running:
                job.executed += delta
                report.busy_time += delta
            time = run_until

            # Handle completions first, then a budget trigger.
            completed = [j for j in running if j.remaining <= TIME_EPS]
            for job in completed:
                ready.remove(job)
                finish(job, time)
            if trigger_job is not None and not trigger_job.is_complete:
                budget = taskset[trigger_job.task_index].wcet(mode)
                if (
                    trigger_job.level > mode
                    and trigger_job.exec_time > budget + TIME_EPS
                    and trigger_job.executed >= budget - TIME_EPS
                ):
                    raise_mode(time)

        for job in ready:
            if job.deadline <= horizon + TIME_EPS and job.remaining > TIME_EPS:
                report.misses.append(
                    DeadlineMiss(
                        task_index=job.task_index,
                        level=job.level,
                        release=job.release,
                        deadline=job.deadline,
                        lateness=float("inf"),
                    )
                )
        return report
