"""Job objects for the runtime simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Job"]


@dataclass
class Job:
    """One instance of a periodic MC task inside the simulator.

    ``deadline`` is always the *original* absolute deadline (release +
    period); the EDF-VD priority uses the mode-dependent *virtual*
    deadline, which the core simulator computes on the fly.  Miss
    accounting is against the original deadline.
    """

    task_index: int  #: index within the core's subset
    level: int  #: the task's own criticality l_i
    release: float
    deadline: float  #: original absolute deadline (release + period)
    exec_time: float  #: actual execution demand drawn from the scenario
    seq: int  #: global release sequence number (priority tie-break)
    executed: float = 0.0
    completion: float | None = field(default=None)
    dropped_at: float | None = field(default=None)

    @property
    def remaining(self) -> float:
        return self.exec_time - self.executed

    @property
    def is_complete(self) -> bool:
        return self.completion is not None

    @property
    def is_dropped(self) -> bool:
        return self.dropped_at is not None

    @property
    def lateness(self) -> float | None:
        """Completion minus deadline; ``None`` if not complete."""
        if self.completion is None:
            return None
        return self.completion - self.deadline
