"""Execution-time scenarios: how much work each job actually demands.

The MC model's guarantee is conditional on behaviour: every job of task
``tau_i`` runs for at most ``c_i(l_i)``.  A *scenario* decides, per job,
the actual demand within that envelope:

* :class:`HonestScenario` — everyone stays within their level-1 budget;
  no mode switch ever occurs.
* :class:`LevelScenario` — jobs exhaust their level-``target`` budget
  (capped by their own criticality), driving cores up to that mode.
* :class:`RandomScenario` — per job, the demand level escalates past
  each budget boundary with probability ``overrun_prob`` (geometric),
  then the demand is drawn uniformly within the selected band.  This is
  the "anything allowed by the model" adversary used for validation.
* :class:`FaultyScenario` — *violates* the model: jobs of the selected
  tasks exceed even their own top-level WCET by ``excess``.  Used by the
  failure-injection tests to show the guarantee is conditional.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.model.task import MCTask
from repro.types import SimulationError

__all__ = [
    "ExecutionScenario",
    "HonestScenario",
    "LevelScenario",
    "RandomScenario",
    "FaultyScenario",
]


class ExecutionScenario(abc.ABC):
    """Draws actual execution demands for jobs."""

    @abc.abstractmethod
    def draw(self, task: MCTask, rng: np.random.Generator) -> float:
        """Actual execution time of the next job of ``task``.

        Model-conformant scenarios return a value in ``(0, c(l_i)]``.
        """


class HonestScenario(ExecutionScenario):
    """Every job needs ``fraction * c(1)`` (no overruns, no mode switches)."""

    def __init__(self, fraction: float = 1.0):
        if not 0.0 < fraction <= 1.0:
            raise SimulationError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def draw(self, task: MCTask, rng: np.random.Generator) -> float:
        return self.fraction * task.wcet(1)


class LevelScenario(ExecutionScenario):
    """Jobs exhaust their level-``target`` budget (capped at ``l_i``).

    A job of a task with ``l_i >= target`` demands exactly
    ``c(target)``, which exceeds every budget below ``target`` and so
    drives its core's mode up to ``target``.  Tasks with lower
    criticality demand their own full budget ``c(l_i)``.
    """

    def __init__(self, target: int):
        if target < 1:
            raise SimulationError(f"target level must be >= 1, got {target}")
        self.target = target

    def draw(self, task: MCTask, rng: np.random.Generator) -> float:
        return task.wcet(min(self.target, task.criticality))


class RandomScenario(ExecutionScenario):
    """Geometric escalation through budget bands.

    Starting at level 1, the job's demand band escalates to the next
    level with probability ``overrun_prob`` (while below ``l_i``); the
    demand is then uniform in ``(c(k-1), c(k)]`` of the chosen band ``k``
    (with ``c(0) = 0``).
    """

    def __init__(self, overrun_prob: float = 0.1):
        if not 0.0 <= overrun_prob <= 1.0:
            raise SimulationError(
                f"overrun_prob must be in [0, 1], got {overrun_prob}"
            )
        self.overrun_prob = overrun_prob

    def draw(self, task: MCTask, rng: np.random.Generator) -> float:
        level = 1
        while level < task.criticality and rng.random() < self.overrun_prob:
            level += 1
        low = task.wcet(level - 1) if level > 1 else 0.0
        high = task.wcet(level)
        # Uniform in (low, high]: `uniform` draws the half-open
        # [0, high - low), so reflecting it off `high` excludes `low`
        # (which would not constitute an overrun of the previous
        # budget) and keeps `high` reachable.
        return high - float(rng.uniform(0.0, high - low))


class FaultyScenario(ExecutionScenario):
    """Model violation: demands ``(1 + excess) * c(l_i)`` (for injection tests)."""

    def __init__(self, excess: float = 0.5):
        if excess <= 0.0:
            raise SimulationError(f"excess must be positive, got {excess}")
        self.excess = excess

    def draw(self, task: MCTask, rng: np.random.Generator) -> float:
        return (1.0 + self.excess) * task.wcet(task.criticality)
