"""Release models: periodic vs sporadic job arrivals.

The paper evaluates strictly periodic tasks, but the EDF-VD
schedulability theory it builds on (Baruah et al.) is proven for
*sporadic* tasks — periods are only minimum interarrival times.  The
simulator therefore supports both: a release model decides, after each
release of a task, when the next one may happen.  Validating that
analysis-accepted subsets stay miss-free under sporadic arrivals
exercises the sustainability of the implementation.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.model.task import MCTask
from repro.types import SimulationError

__all__ = ["ReleaseModel", "PeriodicReleases", "SporadicReleases"]


class ReleaseModel(abc.ABC):
    """Decides the gap between consecutive releases of one task."""

    @abc.abstractmethod
    def interarrival(self, task: MCTask, rng: np.random.Generator) -> float:
        """Time from one release to the next; must be ``>= task.period``."""


class PeriodicReleases(ReleaseModel):
    """Strictly periodic arrivals (the paper's model)."""

    def interarrival(self, task: MCTask, rng: np.random.Generator) -> float:
        return task.period


class SporadicReleases(ReleaseModel):
    """Sporadic arrivals: interarrival uniform in
    ``[p, (1 + max_delay) * p]``.

    ``max_delay = 0`` degenerates to periodic.  Larger delays mean less
    load, so a subset schedulable under periodic arrivals remains
    schedulable (the analysis is sustainable in interarrival times).
    """

    def __init__(self, max_delay: float = 0.5):
        if max_delay < 0.0:
            raise SimulationError(f"max_delay must be >= 0, got {max_delay}")
        self.max_delay = max_delay

    def interarrival(self, task: MCTask, rng: np.random.Generator) -> float:
        return task.period * (1.0 + float(rng.uniform(0.0, self.max_delay)))
