"""Event-driven simulation of EDF-VD + AMC on one core.

The simulator implements the run-time rules of Sections II-III:

* preemptive EDF on *virtual* absolute deadlines
  ``release + scale(l_i, mode) * p_i``, where the scale comes from the
  core's :class:`~repro.analysis.VirtualDeadlineAssignment`;
* AMC mode switches: while the core is at mode ``m``, a job of a task
  with ``l_i > m`` that executes for its level-``m`` budget ``c_i(m)``
  without completing raises the mode to ``m + 1`` at that instant;
  jobs (and future releases) of tasks with ``l_i < mode`` are dropped;
* idle reset: the moment the core has no pending workload it returns to
  mode 1 and all tasks release normally again (from their next period
  boundary — releases are periodic and never shifted);
* miss accounting is against *original* deadlines and only for jobs the
  protocol did not drop.

The loop advances from event to event (release / completion / budget
boundary), so simulated time is exact up to float rounding; no quantum
is involved.

Time comparison convention
--------------------------
Every float comparison goes through :func:`time_after` /
:func:`time_reached` with the single tolerance ``TIME_EPS``: two
instants (or durations) closer than ``TIME_EPS`` are the *same*
instant.  Two consequences worth spelling out:

* a demand within ``TIME_EPS`` of the level-``m`` budget counts as
  completing *at* the budget, never as an overrun — the budget trigger
  only arms for ``exec_time`` strictly beyond the budget;
* when a budget overrun coincides with a release (same instant up to
  ``TIME_EPS``), the mode is raised *first*, so the coinciding release
  is admitted or dropped under the raised mode, as AMC requires.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.virtual_deadlines import VirtualDeadlineAssignment
from repro.model.taskset import MCTaskSet
from repro.obs.runtime import OBS
from repro.sched.job import Job
from repro.sched.scenario import ExecutionScenario
from repro.sched.trace import EventKind, ExecutionSlice, Trace, TraceEvent
from repro.types import SimulationError

__all__ = [
    "CoreSimulator",
    "CoreReport",
    "DeadlineMiss",
    "time_after",
    "time_reached",
]

#: Simulation time comparison tolerance.
TIME_EPS: float = 1e-9


def time_after(a: float, b: float) -> bool:
    """True when ``a`` lies strictly after ``b`` (beyond ``TIME_EPS``)."""
    return a > b + TIME_EPS


def time_reached(a: float, b: float) -> bool:
    """True when ``a`` has reached ``b`` (equal within ``TIME_EPS`` or past)."""
    return a >= b - TIME_EPS


@dataclass(frozen=True)
class DeadlineMiss:
    """A non-dropped job that completed (or was still pending) past its
    original deadline."""

    task_index: int
    level: int
    release: float
    deadline: float
    lateness: float  #: > 0; inf for jobs still pending at the horizon


@dataclass
class CoreReport:
    """Statistics of one core's simulation run."""

    horizon: float
    released: int = 0
    completed: int = 0
    dropped: int = 0  #: jobs cancelled by mode switches or dropped at release
    censored: int = 0  #: jobs whose deadline lies beyond the horizon
    pending: int = 0  #: jobs still in the ready queue at the horizon
    mode_switches: int = 0
    idle_resets: int = 0
    max_mode: int = 1
    busy_time: float = 0.0
    misses: list[DeadlineMiss] = field(default_factory=list)
    trace: Trace | None = None  #: populated when tracing is enabled

    @property
    def miss_count(self) -> int:
        return len(self.misses)

    @property
    def utilization_observed(self) -> float:
        return self.busy_time / self.horizon if self.horizon > 0 else 0.0


class CoreSimulator:
    """Simulates one core's task subset under EDF-VD + AMC."""

    def __init__(
        self,
        subset: MCTaskSet,
        plan: VirtualDeadlineAssignment,
        scenario: ExecutionScenario,
        rng: np.random.Generator,
        horizon: float,
        record_trace: bool = False,
        priority_fn=None,
        releases=None,
        events=None,
    ):
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        if plan.levels != subset.levels:
            raise SimulationError(
                f"plan has {plan.levels} levels but subset has {subset.levels}"
            )
        self.subset = subset
        self.plan = plan
        self.scenario = scenario
        self.rng = rng
        self.horizon = float(horizon)
        self.record_trace = record_trace
        #: optional scheduling-key override ``(job, mode) -> float``
        #: (lower runs first).  Default: EDF-VD virtual deadlines.  The
        #: fixed-priority simulator passes static priorities here; the
        #: AMC machinery (budgets, drops, idle reset) is unchanged.
        self.priority_fn = priority_fn
        #: arrival model; ``None`` means strictly periodic releases.
        #: See :mod:`repro.sched.releases`.
        self.releases = releases
        #: compiled per-core event adapter
        #: (:class:`repro.sched.events.CoreEventView`) or ``None``.  With
        #: ``None`` every event hook below short-circuits and the loop is
        #: the original static simulation, bit for bit.
        self.events = events
        if events is not None and len(events.joins) != len(subset):
            raise SimulationError(
                f"event view describes {len(events.joins)} membership "
                f"entries but the subset has {len(subset)} tasks"
            )

    # ------------------------------------------------------------------
    def run(self) -> CoreReport:
        subset, plan, horizon = self.subset, self.plan, self.horizon
        report = CoreReport(horizon=horizon)
        n = len(subset)
        periods = np.array([t.period for t in subset], dtype=np.float64)
        levels = subset.criticalities

        # Injected-event state (all inert when no view is attached: the
        # extra comparisons below are against +inf / None and change no
        # float nor any RNG draw of the static path).
        view = self.events
        if view is None:
            next_release = np.zeros(n, dtype=np.float64)
            leaves = None
            burst = None
            recovery = None
            fail_times: tuple[float, ...] = ()
            plan_changes = ()
            tallies: dict[str, int] | None = None
        else:
            next_release = view.joins.astype(np.float64, copy=True)
            leaves = view.leaves
            # Entries whose residency is empty never release.
            next_release[leaves <= next_release + TIME_EPS] = np.inf
            burst = view.burst
            recovery = view.recovery
            fail_times = view.failures
            plan_changes = view.plan_changes
            tallies = view.tallies
        fail_idx = 0
        next_fail = fail_times[0] if fail_times else np.inf
        plan_idx = 0

        mode = 1
        time = 0.0
        seq = 0
        # heap entries: (virtual_deadline, seq, job)
        ready: list[tuple[float, int, Job]] = []
        trace = Trace(events=[], slices=[]) if self.record_trace else None

        def record(kind: EventKind, now: float, task_index: int | None = None):
            if trace is not None:
                trace.events.append(
                    TraceEvent(time=now, kind=kind, task_index=task_index, mode=mode)
                )

        def virtual_deadline(job: Job) -> float:
            scale = plan.task_scale(job.task_index, int(job.level), mode)
            return job.release + scale * (job.deadline - job.release)

        priority_fn = self.priority_fn

        def push(job: Job) -> None:
            key = (
                virtual_deadline(job)
                if priority_fn is None
                else float(priority_fn(job, mode))
            )
            heapq.heappush(ready, (key, job.seq, job))

        def rebuild() -> None:
            jobs = [entry[2] for entry in ready]
            ready.clear()
            for job in jobs:
                push(job)

        def release_due(now: float) -> None:
            nonlocal seq
            due = np.flatnonzero(next_release <= now + TIME_EPS)
            for i in due:
                task = subset[int(i)]
                r = float(next_release[i])
                exec_time = float(self.scenario.draw(task, self.rng))
                if burst is not None:
                    factor = burst.factor(int(i), r)
                    if factor != 1.0:
                        exec_time *= factor
                        tallies["burst_jobs"] += 1
                if exec_time <= 0:
                    raise SimulationError(
                        f"scenario produced non-positive execution time {exec_time}"
                    )
                job = Job(
                    task_index=int(i),
                    level=int(levels[i]),
                    release=r,
                    deadline=r + float(periods[i]),
                    exec_time=exec_time,
                    seq=seq,
                )
                seq += 1
                report.released += 1
                if time_after(job.deadline, horizon):
                    report.censored += 1
                record(EventKind.RELEASE, now, int(i))
                if job.level < mode:
                    job.dropped_at = now
                    report.dropped += 1
                    record(EventKind.DROP, now, int(i))
                else:
                    push(job)
                if self.releases is None:
                    gap = float(periods[i])
                else:
                    gap = float(self.releases.interarrival(task, self.rng))
                    if gap < float(periods[i]) - TIME_EPS:
                        raise SimulationError(
                            "release model produced an interarrival below"
                            f" the period ({gap} < {periods[i]})"
                        )
                upcoming_release = r + gap
                if leaves is not None and time_reached(
                    upcoming_release, float(leaves[i])
                ):
                    # The residency ends first: no release at/after it.
                    upcoming_release = np.inf
                next_release[i] = upcoming_release

        def raise_mode(now: float) -> None:
            nonlocal mode
            mode += 1
            report.mode_switches += 1
            report.max_mode = max(report.max_mode, mode)
            record(EventKind.MODE_UP, now)
            # Cancel jobs of tasks below the new mode.
            survivors = []
            for _, _, job in ready:
                if job.level < mode:
                    job.dropped_at = now
                    report.dropped += 1
                    record(EventKind.DROP, now, job.task_index)
                else:
                    survivors.append(job)
            ready.clear()
            for job in survivors:
                push(job)

        def finish(job: Job, now: float) -> None:
            job.completion = now
            report.completed += 1
            record(EventKind.COMPLETE, now, job.task_index)
            if not time_after(job.deadline, horizon) and time_after(now, job.deadline):
                record(EventKind.MISS, now, job.task_index)
                report.misses.append(
                    DeadlineMiss(
                        task_index=job.task_index,
                        level=job.level,
                        release=job.release,
                        deadline=job.deadline,
                        lateness=now - job.deadline,
                    )
                )

        def apply_failure(now: float) -> None:
            """Core goes offline: drop everything in flight, silence the
            residents that left, restart (a later hotplug) at mode 1."""
            nonlocal mode
            for _, _, job in ready:
                job.dropped_at = now
                report.dropped += 1
                tallies["failure_drops"] += 1
                record(EventKind.DROP, now, job.task_index)
            ready.clear()
            next_release[leaves <= now + TIME_EPS] = np.inf
            mode = 1  # not an idle reset: the core restarts empty

        while not time_reached(time, horizon):
            if time_reached(time, next_fail):
                apply_failure(next_fail)
                fail_idx += 1
                next_fail = (
                    fail_times[fail_idx]
                    if fail_idx < len(fail_times)
                    else np.inf
                )
                continue
            # Membership changed: rebind the deadline-scaling plan at the
            # next scheduling point at/after the epoch boundary (jobs
            # already keyed keep the plan they were released under).
            while plan_idx < len(plan_changes) and time_reached(
                time, plan_changes[plan_idx][0]
            ):
                plan = plan_changes[plan_idx][1]
                plan_idx += 1
                rebuild()
            release_due(time)
            if not ready:
                upcoming = float(next_release.min())
                idle_until = min(upcoming, horizon, next_fail)
                if recovery is None:
                    if mode != 1:
                        # Idle instant: AMC resets to the lowest mode.
                        mode = 1
                        report.idle_resets += 1
                        record(EventKind.IDLE_RESET, time)
                else:
                    # Explicit-recovery protocol: the reset needs an idle
                    # instant *inside a sanctioned window* (consumed
                    # while already at mode 1 -> no-op).
                    applied, consumed = recovery.claim(time, idle_until)
                    if consumed:
                        if mode != 1:
                            mode = 1
                            report.idle_resets += 1
                            record(EventKind.IDLE_RESET, applied)
                            tallies["mode_recovery_applied"] += consumed
                        else:
                            tallies["mode_recovery_noop"] += consumed
                time = idle_until
                continue

            vd, _, job = ready[0]
            task = subset[job.task_index]
            next_event = min(float(next_release.min()), horizon)

            # Budget boundary that would trigger a mode switch: only for
            # tasks above the current mode (Section II-A).
            budget_trigger = np.inf
            if job.level > mode:
                budget = task.wcet(mode)
                if time_after(job.exec_time, budget):
                    if time_reached(job.executed, budget):
                        # Already at the boundary (e.g. a release landed
                        # exactly there): the overrun happens the instant
                        # the job resumes.
                        budget_trigger = time
                    else:
                        budget_trigger = time + (budget - job.executed)

            completion_at = time + job.remaining
            run_until = min(completion_at, next_event, budget_trigger, next_fail)
            delta = run_until - time
            if delta < -TIME_EPS:
                raise SimulationError("simulation time went backwards")
            delta = max(delta, 0.0)
            job.executed += delta
            report.busy_time += delta
            if trace is not None and delta > 0.0:
                last = trace.slices[-1] if trace.slices else None
                if (
                    last is not None
                    and last.task_index == job.task_index
                    and abs(last.end - time) <= TIME_EPS
                ):
                    last.end = run_until  # merge contiguous slices
                else:
                    trace.slices.append(
                        ExecutionSlice(
                            start=time, end=run_until, task_index=job.task_index
                        )
                    )
            time = run_until

            # Zero remaining demand means the job ran to (within
            # TIME_EPS of) completion before any release or budget
            # boundary.  When the trigger is armed the demand left at
            # the boundary is exec_time - budget > TIME_EPS, so the two
            # branches are mutually exclusive.  The trigger branch
            # deliberately ignores next_event: a release coinciding
            # with the budget instant must be processed under the
            # raised mode (see module docstring).
            if not time_after(job.remaining, 0.0):
                heapq.heappop(ready)
                finish(job, time)
            elif time_reached(time, budget_trigger):
                raise_mode(time)
                rebuild()
            # else: a release preempts; loop handles it.

        # Horizon reached: pending jobs whose deadline passed are misses.
        if recovery is not None:
            # Recovery windows no idle instant ever covered.
            tallies["mode_recovery_missed"] += recovery.unconsumed()
        report.pending = len(ready)
        for _, _, job in ready:
            if not time_after(job.deadline, horizon) and time_after(job.remaining, 0.0):
                report.misses.append(
                    DeadlineMiss(
                        task_index=job.task_index,
                        level=job.level,
                        release=job.release,
                        deadline=job.deadline,
                        lateness=float("inf"),
                    )
                )
        report.trace = trace
        if OBS.enabled:
            _record_core_report(report)
        return report


def _record_core_report(report: CoreReport) -> None:
    """Mirror one core run's protocol tallies into the obs registry.

    Called once per :meth:`CoreSimulator.run`, so the instrumentation
    cost is independent of the number of simulated events.  The counter
    totals reconcile exactly with the report fields (and, when tracing
    is on, with ``Trace.counts()`` — except ``sim.deadline_miss``, which
    also includes jobs still pending at the horizon, for which no MISS
    trace event exists).
    """
    reg = OBS.registry
    reg.counter("sim.cores_simulated").inc()
    reg.counter("sim.released").inc(report.released)
    reg.counter("sim.completed").inc(report.completed)
    reg.counter("sim.dropped").inc(report.dropped)
    reg.counter("sim.pending").inc(report.pending)
    reg.counter("sim.censored").inc(report.censored)
    reg.counter("sim.mode_up").inc(report.mode_switches)
    reg.counter("sim.idle_reset").inc(report.idle_resets)
    reg.counter("sim.deadline_miss").inc(report.miss_count)
    reg.summary("sim.core_utilization_observed").observe(
        report.utilization_observed
    )
