"""Partition-quality metrics and batch aggregation."""

from repro.metrics.aggregate import SchemeAccumulator, SchemeStats
from repro.metrics.core import (
    average_core_utilization,
    core_utilizations,
    imbalance_factor,
    partition_metrics,
    system_utilization,
)

__all__ = [
    "SchemeAccumulator",
    "SchemeStats",
    "average_core_utilization",
    "core_utilizations",
    "imbalance_factor",
    "partition_metrics",
    "system_utilization",
]
