"""Partition-quality metrics (Eqs. (9)-(11), (16) of the paper).

All four evaluation metrics of Section IV-A:

* **schedulability ratio** — fraction of task sets a scheme places
  feasibly (computed by the aggregation layer);
* **system utilization** ``U_sys = max_m U^{Psi_m}`` (Eq. (10));
* **average core utilization** ``U_avg = (1/M) sum_m U^{Psi_m}``
  (Eq. (11));
* **workload imbalance factor**
  ``Lambda = (U_sys - min_m U^{Psi_m}) / U_sys`` (Eq. (16)), with the
  ``min`` taken over loaded cores only (see :func:`imbalance_factor`).

The paper evaluates the last three over *schedulable* task sets only;
the aggregation layer enforces that.
"""

from __future__ import annotations

import numpy as np

from repro.model.partition import Partition
from repro.types import EPS, ModelError

__all__ = [
    "core_utilizations",
    "system_utilization",
    "average_core_utilization",
    "imbalance_factor",
    "partition_metrics",
]


def core_utilizations(partition: Partition) -> np.ndarray:
    """Per-core Eq.-(9) utilizations; empty cores are 0.

    Served from the partition's per-core cache (one vectorized pass over
    the cores whose subsets changed since the last call).
    """
    return partition.core_utilizations()


def system_utilization(utils: np.ndarray) -> float:
    """``U_sys`` (Eq. (10)): the maximum core utilization."""
    return float(np.max(utils))


def average_core_utilization(utils: np.ndarray) -> float:
    """``U_avg`` (Eq. (11)): the mean core utilization."""
    return float(np.mean(utils))


def imbalance_factor(utils: np.ndarray) -> float:
    """``Lambda`` (Eq. (16)) over the *loaded* cores.

    The ``min`` excludes idle cores (utilization ``<= EPS``), matching
    the loaded-core convention of the CA-TPA Eq.-(16) override: an
    untouched core would otherwise pin ``Lambda`` at exactly 1 whenever
    the workload fits on fewer cores than the machine has.  A system
    with at most one loaded core is perfectly balanced (``Lambda`` = 0).
    """
    utils = np.asarray(utils, dtype=np.float64)
    u_sys = float(np.max(utils))
    if u_sys <= EPS:
        return 0.0
    loaded = utils[utils > EPS]
    return (u_sys - float(loaded.min())) / u_sys


def partition_metrics(partition: Partition, utils: np.ndarray | None = None) -> dict:
    """All three partition-quality figures in one dict.

    ``utils`` may be passed when the caller already has the per-core
    utilizations (e.g. from a :class:`PartitionResult`).
    """
    if utils is None:
        utils = core_utilizations(partition)
    utils = np.asarray(utils, dtype=np.float64)
    if utils.ndim != 1 or utils.size != partition.cores:
        raise ModelError(
            f"utils must be a ({partition.cores},) vector, got shape {utils.shape}"
        )
    return {
        "u_sys": system_utilization(utils),
        "u_avg": average_core_utilization(utils),
        "imbalance": imbalance_factor(utils),
    }
