"""Aggregation of per-task-set outcomes into per-scheme statistics.

One :class:`SchemeAccumulator` per (scheme, data point).  Feed it each
task set's :class:`~repro.partition.PartitionResult`; it maintains the
schedulability count and the running sums of ``U_sys`` / ``U_avg`` /
``Lambda`` over the *schedulable* sets (matching the paper: "these
metrics are obtained by considering only the schedulable task sets").

Accumulators are picklable and mergeable, so the parallel harness can
reduce per-worker partial results.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.metrics.core import (
    average_core_utilization,
    imbalance_factor,
    system_utilization,
)
from repro.partition.base import PartitionResult
from repro.types import ModelError

__all__ = ["SchemeAccumulator", "SchemeStats"]


@dataclass(frozen=True)
class SchemeStats:
    """Final per-scheme figures for one data point."""

    scheme: str
    total_sets: int
    schedulable_sets: int
    sched_ratio: float
    u_sys: float  #: mean U_sys over schedulable sets (nan if none)
    u_avg: float  #: mean U_avg over schedulable sets (nan if none)
    imbalance: float  #: mean Lambda over schedulable sets (nan if none)


@dataclass
class SchemeAccumulator:
    """Running sums for one scheme at one data point."""

    scheme: str
    total_sets: int = 0
    schedulable_sets: int = 0
    sum_u_sys: float = 0.0
    sum_u_avg: float = 0.0
    sum_imbalance: float = 0.0

    def add(self, result: PartitionResult, *, check_scheme: bool = True) -> None:
        """Record one task set's outcome.

        ``check_scheme=False`` skips the name guard — used when the
        accumulator is keyed by a *label* that differs from the
        partitioner's registry name (e.g. ``ca-tpa`` alpha variants).
        """
        if check_scheme and result.scheme != self.scheme:
            raise ModelError(
                f"accumulator for {self.scheme!r} got result for {result.scheme!r}"
            )
        self.total_sets += 1
        if not result.schedulable:
            return
        self.schedulable_sets += 1
        utils = result.core_utilizations()
        self.sum_u_sys += system_utilization(utils)
        self.sum_u_avg += average_core_utilization(utils)
        self.sum_imbalance += imbalance_factor(utils)

    def merge(self, other: "SchemeAccumulator") -> None:
        """Fold another worker's partial sums into this one."""
        if other.scheme != self.scheme:
            raise ModelError(
                f"cannot merge accumulator for {other.scheme!r} into {self.scheme!r}"
            )
        self.total_sets += other.total_sets
        self.schedulable_sets += other.schedulable_sets
        self.sum_u_sys += other.sum_u_sys
        self.sum_u_avg += other.sum_u_avg
        self.sum_imbalance += other.sum_imbalance

    def finalize(self) -> SchemeStats:
        """Close the books: means over schedulable sets, ratio over all."""
        n_ok = self.schedulable_sets
        return SchemeStats(
            scheme=self.scheme,
            total_sets=self.total_sets,
            schedulable_sets=n_ok,
            sched_ratio=(n_ok / self.total_sets) if self.total_sets else float("nan"),
            u_sys=(self.sum_u_sys / n_ok) if n_ok else float("nan"),
            u_avg=(self.sum_u_avg / n_ok) if n_ok else float("nan"),
            imbalance=(self.sum_imbalance / n_ok) if n_ok else float("nan"),
        )
