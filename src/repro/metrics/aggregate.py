"""Aggregation of per-task-set outcomes into per-scheme statistics.

One :class:`SchemeAccumulator` per (scheme, data point).  Feed it each
task set's :class:`~repro.partition.PartitionResult`; it records the
schedulability count and the per-set ``U_sys`` / ``U_avg`` / ``Lambda``
figures over the *schedulable* sets (matching the paper: "these metrics
are obtained by considering only the schedulable task sets").

Accumulators are picklable and mergeable, so the parallel harness can
reduce per-worker partial results.  Finalization sums the per-set values
with :func:`math.fsum`, whose exactly-rounded result is independent of
summation order — merging worker shards in any order yields **bit-
identical** :class:`SchemeStats`, which is what lets the runner promise
reproducibility regardless of the worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


from repro.metrics.core import (
    average_core_utilization,
    imbalance_factor,
    system_utilization,
)
from repro.partition.base import PartitionResult
from repro.types import ModelError

__all__ = ["SchemeAccumulator", "SchemeStats"]


def _nan_to_none(value: float) -> float | None:
    return None if isinstance(value, float) and math.isnan(value) else value


def _none_to_nan(value) -> float:
    return float("nan") if value is None else float(value)


@dataclass(frozen=True)
class SchemeStats:
    """Final per-scheme figures for one data point."""

    scheme: str
    total_sets: int
    schedulable_sets: int
    sched_ratio: float
    u_sys: float  #: mean U_sys over schedulable sets (nan if none)
    u_avg: float  #: mean U_avg over schedulable sets (nan if none)
    imbalance: float  #: mean Lambda over schedulable sets (nan if none)

    def to_dict(self) -> dict:
        """Strict-JSON form: NaN means (no schedulable sets) map to null.

        Python floats round-trip exactly through ``repr`` in JSON, so
        :meth:`from_dict` rebuilds a bit-identical ``SchemeStats``.
        """
        return {
            "scheme": self.scheme,
            "total_sets": self.total_sets,
            "schedulable_sets": self.schedulable_sets,
            "sched_ratio": _nan_to_none(self.sched_ratio),
            "u_sys": _nan_to_none(self.u_sys),
            "u_avg": _nan_to_none(self.u_avg),
            "imbalance": _nan_to_none(self.imbalance),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SchemeStats":
        return cls(
            scheme=data["scheme"],
            total_sets=int(data["total_sets"]),
            schedulable_sets=int(data["schedulable_sets"]),
            sched_ratio=_none_to_nan(data["sched_ratio"]),
            u_sys=_none_to_nan(data["u_sys"]),
            u_avg=_none_to_nan(data["u_avg"]),
            imbalance=_none_to_nan(data["imbalance"]),
        )


@dataclass
class SchemeAccumulator:
    """Per-set metric values for one scheme at one data point."""

    scheme: str
    total_sets: int = 0
    u_sys_values: list[float] = field(default_factory=list)
    u_avg_values: list[float] = field(default_factory=list)
    imbalance_values: list[float] = field(default_factory=list)

    @property
    def schedulable_sets(self) -> int:
        return len(self.u_sys_values)

    def add(self, result: PartitionResult, *, check_scheme: bool = True) -> None:
        """Record one task set's outcome.

        ``check_scheme=False`` skips the name guard — used when the
        accumulator is keyed by a *label* that differs from the
        partitioner's registry name (e.g. ``ca-tpa`` alpha variants).
        """
        if check_scheme and result.scheme != self.scheme:
            raise ModelError(
                f"accumulator for {self.scheme!r} got result for {result.scheme!r}"
            )
        self.total_sets += 1
        if not result.schedulable:
            return
        utils = result.core_utilizations()
        self.u_sys_values.append(system_utilization(utils))
        self.u_avg_values.append(average_core_utilization(utils))
        self.imbalance_values.append(imbalance_factor(utils))

    def merge(self, other: "SchemeAccumulator") -> None:
        """Fold another worker's partial values into this one."""
        if other.scheme != self.scheme:
            raise ModelError(
                f"cannot merge accumulator for {other.scheme!r} into {self.scheme!r}"
            )
        self.total_sets += other.total_sets
        self.u_sys_values.extend(other.u_sys_values)
        self.u_avg_values.extend(other.u_avg_values)
        self.imbalance_values.extend(other.imbalance_values)

    def to_dict(self) -> dict:
        """Checkpoint form for the engine's shard store.

        Per-set values are recorded only for *schedulable* sets, so they
        are always finite and survive strict JSON exactly (float ``repr``
        round-trip); :meth:`finalize` on a restored accumulator is
        bit-identical to finalizing the original.
        """
        return {
            "scheme": self.scheme,
            "total_sets": self.total_sets,
            "u_sys_values": list(self.u_sys_values),
            "u_avg_values": list(self.u_avg_values),
            "imbalance_values": list(self.imbalance_values),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SchemeAccumulator":
        return cls(
            scheme=data["scheme"],
            total_sets=int(data["total_sets"]),
            u_sys_values=[float(v) for v in data["u_sys_values"]],
            u_avg_values=[float(v) for v in data["u_avg_values"]],
            imbalance_values=[float(v) for v in data["imbalance_values"]],
        )

    def finalize(self) -> SchemeStats:
        """Close the books: means over schedulable sets, ratio over all."""
        n_ok = self.schedulable_sets
        return SchemeStats(
            scheme=self.scheme,
            total_sets=self.total_sets,
            schedulable_sets=n_ok,
            sched_ratio=(n_ok / self.total_sets) if self.total_sets else float("nan"),
            u_sys=(math.fsum(self.u_sys_values) / n_ok) if n_ok else float("nan"),
            u_avg=(math.fsum(self.u_avg_values) / n_ok) if n_ok else float("nan"),
            imbalance=(
                math.fsum(self.imbalance_values) / n_ok if n_ok else float("nan")
            ),
        )
