"""Elastic mixed-criticality tasks (extension; cf. Su & Zhu, DATE'13).

The paper's related work cites the *elastic* MC task model [31]: instead
of dropping low-criticality work outright, LO tasks declare a range of
acceptable periods and the system degrades their *rate* until the
workload fits.  This package implements the period-elastic variant:

* :class:`ElasticMCTask` — an MC task plus a maximum period
  (``max_period >= period``); running at a longer period keeps the WCET
  but lowers the utilization, i.e. delivers a lower service level;
* :func:`stretch_taskset` — apply a uniform stretch factor to every
  elastic task's period (clamped per task at ``max_period``);
* :func:`elastic_admission` — find the smallest stretch (over a grid)
  at which a given partitioning scheme accepts the workload, degrading
  LO service only as much as necessary.

This composes with everything else in the library: the stretched task
set is an ordinary :class:`~repro.model.MCTaskSet`, so it can be
analyzed, partitioned and simulated unchanged.
"""

from repro.elastic.model import ElasticMCTask, stretch_taskset
from repro.elastic.admission import ElasticAdmission, elastic_admission

__all__ = [
    "ElasticAdmission",
    "ElasticMCTask",
    "elastic_admission",
    "stretch_taskset",
]
