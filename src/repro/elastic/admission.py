"""Elastic admission: degrade LO service until the workload fits."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.elastic.model import ElasticMCTask, stretch_taskset
from repro.model.taskset import MCTaskSet
from repro.partition.base import Partitioner, PartitionResult
from repro.types import ModelError

__all__ = ["ElasticAdmission", "elastic_admission"]


@dataclass(frozen=True)
class ElasticAdmission:
    """Outcome of an elastic admission attempt.

    Attributes
    ----------
    admitted:
        True iff some stretch within the tasks' limits was accepted.
    factor:
        The applied uniform stretch factor (1.0 = full service); the
        per-task *effective* stretch may be smaller due to clamping.
    taskset:
        The stretched task set that was accepted (``None`` if rejected).
    result:
        The accepting :class:`PartitionResult` (``None`` if rejected).
    service_levels:
        Per-task delivered rate relative to desired, in ``(0, 1]``.
    """

    admitted: bool
    factor: float
    taskset: MCTaskSet | None
    result: PartitionResult | None
    service_levels: tuple[float, ...]

    @property
    def mean_service_level(self) -> float:
        return float(np.mean(self.service_levels))


def elastic_admission(
    elastic_tasks: list[ElasticMCTask],
    cores: int,
    partitioner: Partitioner,
    steps: int = 20,
    levels: int | None = None,
) -> ElasticAdmission:
    """Smallest-degradation admission over a uniform stretch grid.

    Scans ``steps + 1`` stretch factors from 1.0 (full service) to the
    largest per-task limit, accepting the first factor at which
    ``partitioner`` produces a feasible partition.  The scan is
    ascending, so the returned admission degrades service no more than
    the grid resolution requires.  (Partitioning heuristics are not
    perfectly monotone in stretching, so a later grid point could in
    principle fail where an earlier succeeded — the *first* success is
    what we report, which is exactly the desired semantics.)
    """
    if steps < 1:
        raise ModelError(f"steps must be >= 1, got {steps}")
    max_factor = max(e.max_stretch for e in elastic_tasks)
    factors = np.linspace(1.0, max_factor, steps + 1)
    for factor in factors:
        taskset = stretch_taskset(elastic_tasks, float(factor), levels=levels)
        result = partitioner.partition(taskset, cores)
        if result.schedulable:
            return ElasticAdmission(
                admitted=True,
                factor=float(factor),
                taskset=taskset,
                result=result,
                service_levels=tuple(
                    e.service_level(float(factor)) for e in elastic_tasks
                ),
            )
    return ElasticAdmission(
        admitted=False,
        factor=float(max_factor),
        taskset=None,
        result=None,
        service_levels=tuple(
            e.service_level(max_factor) for e in elastic_tasks
        ),
    )
