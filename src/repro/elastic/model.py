"""The period-elastic MC task model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.task import MCTask
from repro.model.taskset import MCTaskSet
from repro.types import ModelError

__all__ = ["ElasticMCTask", "stretch_taskset"]


@dataclass(frozen=True)
class ElasticMCTask:
    """An MC task whose period may be stretched up to ``max_period``.

    ``task.period`` is the *desired* period (full service);
    ``max_period`` is the longest acceptable one (minimum service).
    Non-elastic tasks simply use ``max_period == period``.  Elasticity
    is typically given to low-criticality tasks only, but the model does
    not enforce that — high-criticality rate adaptation is a legitimate
    (if unusual) configuration.
    """

    task: MCTask
    max_period: float

    def __post_init__(self) -> None:
        if self.max_period < self.task.period:
            raise ModelError(
                f"max_period {self.max_period} is below the desired period"
                f" {self.task.period}"
            )

    @property
    def max_stretch(self) -> float:
        """The largest admissible stretch factor for this task."""
        return self.max_period / self.task.period

    def stretched(self, factor: float) -> MCTask:
        """The task running at ``min(factor, max_stretch) * period``.

        WCETs are unchanged; utilization scales down by the applied
        stretch.
        """
        if factor < 1.0:
            raise ModelError(f"stretch factor must be >= 1, got {factor}")
        applied = min(factor, self.max_stretch)
        if applied == 1.0:
            return self.task
        return MCTask(
            wcets=self.task.wcets,
            period=self.task.period * applied,
            name=self.task.name,
        )

    def service_level(self, factor: float) -> float:
        """Delivered rate relative to the desired rate, in ``(0, 1]``."""
        return 1.0 / min(max(factor, 1.0), self.max_stretch)


def stretch_taskset(
    elastic_tasks: list[ElasticMCTask], factor: float, levels: int | None = None
) -> MCTaskSet:
    """An ordinary task set with every task stretched by ``factor``.

    Per-task clamping applies, so inelastic tasks (``max_period ==
    period``) are untouched.
    """
    if not elastic_tasks:
        raise ModelError("at least one task is required")
    return MCTaskSet([e.stretched(factor) for e in elastic_tasks], levels=levels)
