"""Hierarchical trace analysis and export over completed span records.

The runtime (:mod:`repro.obs.runtime`) gives every :func:`~repro.obs.span`
a ``span_id``/``parent_id`` pair and mirrors completed records into the
JSONL event stream as ``span.<name>`` events, with worker-process spans
re-rooted under the parent engine's shard spans.  This module is the
offline half: it rebuilds the span *tree* from an ``events.jsonl`` file
(or in-memory records), computes self-time vs total-time attribution and
the critical path, and exports two standard profile formats —
folded stacks (``flamegraph.pl`` / speedscope) and Chrome trace-event
JSON (``chrome://tracing`` / Perfetto).

Everything here is reconstructible from the events file alone: no live
process, registry, or store is needed, so a trace shipped from a CI
artifact analyses identically to a local one.

Vocabulary
----------
*total* time of a span is its own wall duration; *self* time is total
minus the sum of its children's totals, clamped at zero (children that
ran concurrently — parallel shards under one point — can legitimately
sum past their parent).  The *critical path* descends from the root
through the largest child at every level: the chain of spans that
bounded the run's wall clock.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.types import ReproError

__all__ = [
    "SpanNode",
    "TraceTree",
    "read_events",
    "resolve_events_path",
    "span_records",
    "build_tree",
    "load_tree",
    "critical_path",
    "aggregate_spans",
    "aggregate_schemes",
    "to_folded",
    "to_chrome",
    "format_report",
]

#: Event-name prefix that marks a span record in the event stream.
SPAN_EVENT_PREFIX = "span."

#: Record keys that are structure, not user payload.
_STRUCTURAL_KEYS = frozenset(
    {
        "span_id",
        "parent_id",
        "name",
        "start",
        "seconds",
        "error",
        "scheme",
        "calls",
        "synthetic",
        # event envelope (present when records come from an events file)
        "run_id",
        "seq",
        "ts",
        "event",
    }
)


@dataclass
class SpanNode:
    """One span of the reconstructed tree."""

    span_id: int
    name: str
    parent_id: int | None
    start: float
    seconds: float
    error: bool = False
    scheme: str = ""
    calls: int = 1
    synthetic: bool = False
    fields: dict = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def child_seconds(self) -> float:
        return sum(child.seconds for child in self.children)

    @property
    def self_seconds(self) -> float:
        """Total minus children, clamped at zero (concurrent children)."""
        return max(0.0, self.seconds - self.child_seconds)

    @property
    def label(self) -> str:
        """Display name with the scheme tag: ``partition.attempt[ca-tpa]``."""
        return f"{self.name}[{self.scheme}]" if self.scheme else self.name

    def walk(self) -> Iterator["SpanNode"]:
        """This node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class TraceTree:
    """A reconstructed span forest (one root per top-level span)."""

    roots: list[SpanNode]
    nodes: dict[int, SpanNode]
    #: Nodes whose ``parent_id`` named a span that never closed (or was
    #: dropped).  They are *also* kept in ``roots`` so no time vanishes,
    #: but a well-formed single-run trace has none.
    orphans: list[SpanNode]
    run_id: str = ""

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def root(self) -> SpanNode:
        """The largest root span (the run, in a well-formed trace)."""
        if not self.roots:
            raise ReproError("trace contains no span records")
        return max(self.roots, key=lambda node: node.seconds)

    def walk(self) -> Iterator[SpanNode]:
        for root in self.roots:
            yield from root.walk()


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def read_events(path: str | os.PathLike) -> list[dict]:
    """Parse a JSONL events file (tolerating a torn final line).

    A crashed run may leave a truncated last line; it is skipped.  A
    malformed line anywhere else is a corrupt file and raises
    :class:`ReproError`.
    """
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise ReproError(f"cannot read events file {path}: {exc}") from exc
    events = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                break  # torn tail of a crashed run
            raise ReproError(
                f"{path}:{lineno}: malformed event line ({exc})"
            ) from exc
    return events


def resolve_events_path(target: str | os.PathLike) -> Path:
    """Accept an ``events.jsonl`` file or a run directory containing one."""
    path = Path(target)
    if path.is_dir():
        candidate = path / "events.jsonl"
        if candidate.is_file():
            return candidate
        matches = sorted(path.glob("*.jsonl"))
        if len(matches) == 1:
            return matches[0]
        detail = "no *.jsonl files" if not matches else f"{len(matches)} candidates"
        raise ReproError(
            f"{path} has no events.jsonl and {detail}; pass the file explicitly"
        )
    if not path.is_file():
        raise ReproError(f"no such events file or run directory: {path}")
    return path


def span_records(events: Iterable[dict]) -> list[dict]:
    """Extract the span records from an event stream.

    Records emitted by the runtime carry an explicit ``name`` field; the
    event name (``span.<name>``) is the fallback for hand-rolled lines.
    """
    records = []
    for event in events:
        event_name = event.get("event", "")
        if not event_name.startswith(SPAN_EVENT_PREFIX):
            continue
        if "span_id" not in event or "seconds" not in event:
            continue  # a pre-trace span event; nothing to attach
        record = dict(event)
        record.setdefault("name", event_name[len(SPAN_EVENT_PREFIX) :])
        records.append(record)
    return records


# ----------------------------------------------------------------------
# Tree construction
# ----------------------------------------------------------------------
def build_tree(records: Iterable[dict]) -> TraceTree:
    """Reconstruct the span tree from completed-span records.

    Children are ordered by ``start`` under every parent.  A record
    whose ``parent_id`` resolves to no known span is an *orphan*: it is
    reported in :attr:`TraceTree.orphans` and kept as an extra root so
    its time still shows up in aggregates.
    """
    nodes: dict[int, SpanNode] = {}
    ordered: list[SpanNode] = []
    run_id = ""
    for record in records:
        node = SpanNode(
            span_id=int(record["span_id"]),
            name=str(record.get("name", "?")),
            parent_id=(
                None if record.get("parent_id") is None else int(record["parent_id"])
            ),
            start=float(record.get("start", 0.0)),
            seconds=float(record["seconds"]),
            error=bool(record.get("error", False)),
            scheme=str(record.get("scheme", "")),
            calls=int(record.get("calls", 1)),
            synthetic=bool(record.get("synthetic", False)),
            fields={
                k: v for k, v in record.items() if k not in _STRUCTURAL_KEYS
            },
        )
        if node.span_id in nodes:
            raise ReproError(f"duplicate span_id {node.span_id} in trace")
        nodes[node.span_id] = node
        ordered.append(node)
        run_id = run_id or str(record.get("run_id", ""))

    roots: list[SpanNode] = []
    orphans: list[SpanNode] = []
    for node in ordered:
        if node.parent_id is None:
            roots.append(node)
        else:
            parent = nodes.get(node.parent_id)
            if parent is None:
                orphans.append(node)
                roots.append(node)
            else:
                parent.children.append(node)
    for node in ordered:
        node.children.sort(key=lambda child: (child.start, child.span_id))
    roots.sort(key=lambda node: (node.start, node.span_id))
    return TraceTree(roots=roots, nodes=nodes, orphans=orphans, run_id=run_id)


def load_tree(target: str | os.PathLike) -> TraceTree:
    """events.jsonl (or run directory) → :class:`TraceTree`."""
    return build_tree(span_records(read_events(resolve_events_path(target))))


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
def critical_path(tree: TraceTree) -> list[SpanNode]:
    """Root→leaf chain through the largest child at every level.

    Starts at the largest root; in a coherent single-run trace that root
    spans the whole run, so the chain's head duration *is* the run's
    wall clock and every entry's percentage is "share of the run".
    """
    node = tree.root
    path = [node]
    while node.children:
        node = max(node.children, key=lambda child: (child.seconds, -child.span_id))
        path.append(node)
    return path


def aggregate_spans(tree: TraceTree) -> list[dict]:
    """Per-name totals: count, calls, total/self seconds, errors.

    Sorted by self-time, descending — the flat profile view.  ``calls``
    differs from ``count`` only for synthetic aggregate spans (one
    record standing for many probe invocations).
    """
    rows: dict[str, dict] = {}
    for node in tree.walk():
        row = rows.get(node.name)
        if row is None:
            row = rows[node.name] = {
                "name": node.name,
                "count": 0,
                "calls": 0,
                "total_seconds": 0.0,
                "self_seconds": 0.0,
                "errors": 0,
            }
        row["count"] += 1
        row["calls"] += node.calls
        row["total_seconds"] += node.seconds
        row["self_seconds"] += node.self_seconds
        row["errors"] += int(node.error)
    return sorted(
        rows.values(), key=lambda row: (-row["self_seconds"], row["name"])
    )


def aggregate_schemes(tree: TraceTree) -> list[dict]:
    """Per-(scheme, name) totals for scheme-tagged spans.

    The per-scheme cost attribution the paper's Section VI comparison
    needs: how much of the sweep each partitioning scheme burned, split
    by span name (placement loop vs probe time).
    """
    rows: dict[tuple[str, str], dict] = {}
    for node in tree.walk():
        if not node.scheme:
            continue
        key = (node.scheme, node.name)
        row = rows.get(key)
        if row is None:
            row = rows[key] = {
                "scheme": node.scheme,
                "name": node.name,
                "count": 0,
                "calls": 0,
                "total_seconds": 0.0,
                "self_seconds": 0.0,
                "errors": 0,
            }
        row["count"] += 1
        row["calls"] += node.calls
        row["total_seconds"] += node.seconds
        row["self_seconds"] += node.self_seconds
        row["errors"] += int(node.error)
    return sorted(
        rows.values(),
        key=lambda row: (-row["total_seconds"], row["scheme"], row["name"]),
    )


# ----------------------------------------------------------------------
# Export: folded stacks
# ----------------------------------------------------------------------
def to_folded(tree: TraceTree) -> str:
    """Folded-stack lines: ``root;child;leaf <self-microseconds>``.

    The format ``flamegraph.pl`` and speedscope ingest directly; the
    value is *self* time in integer microseconds, so frame widths add up
    to total wall time without double counting.  Scheme-tagged frames
    render as ``name[scheme]``, giving per-scheme flames for free.
    """
    stacks: dict[str, int] = {}

    def descend(node: SpanNode, prefix: str) -> None:
        stack = f"{prefix};{node.label}" if prefix else node.label
        micros = int(round(node.self_seconds * 1e6))
        if micros > 0:
            stacks[stack] = stacks.get(stack, 0) + micros
        for child in node.children:
            descend(child, stack)

    for root in tree.roots:
        descend(root, "")
    return "\n".join(f"{stack} {value}" for stack, value in sorted(stacks.items()))


# ----------------------------------------------------------------------
# Export: Chrome trace events
# ----------------------------------------------------------------------
def _layout(tree: TraceTree) -> dict[int, int]:
    """Assign each span a lane (Chrome ``tid``) and sequential synthetic starts.

    Nested spans share their parent's lane (Chrome renders containment
    as a flame); siblings that overlap in time — parallel shard windows
    under one point — are pushed to fresh lanes so they don't corrupt
    the nesting.  Synthetic aggregate spans inherit their parent's start;
    they are laid out one after another from the parent's start so the
    exported slices never overlap (their durations are the true totals,
    their positions within the parent are not).

    Returns ``{span_id: lane}`` and rewrites ``node.start`` of synthetic
    nodes in place (on the in-memory tree only).
    """
    lanes: dict[int, int] = {}
    next_lane = [0]

    def place(node: SpanNode, lane: int) -> None:
        lanes[node.span_id] = lane
        cursor = node.start  # sequential layout point for synthetic children
        lane_ends: dict[int, float] = {}
        for child in node.children:
            if child.synthetic:
                child.start = cursor
                cursor += child.seconds
            chosen = None
            for candidate in (lane, *sorted(set(lane_ends) - {lane})):
                if child.start >= lane_ends.get(candidate, float("-inf")) - 1e-9:
                    chosen = candidate
                    break
            if chosen is None:
                next_lane[0] += 1
                chosen = next_lane[0]
            lane_ends[chosen] = child.start + child.seconds
            place(child, chosen)

    for root in tree.roots:
        next_lane[0] = max(next_lane[0], max(lanes.values(), default=0))
        place(root, next_lane[0])
        next_lane[0] += 1
    return lanes


def to_chrome(tree: TraceTree) -> dict:
    """Chrome trace-event JSON (``chrome://tracing`` / Perfetto).

    Every span becomes a complete ("X") event: ``ts``/``dur`` in
    microseconds relative to the earliest span start, ``pid`` 0, and a
    ``tid`` lane chosen so concurrent spans land on separate rows while
    nested chains stay stacked.  Scheme, error, call counts, and user
    fields ride along in ``args``.
    """
    lanes = _layout(tree)
    t0 = min((node.start for node in tree.walk()), default=0.0)
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": f"repro-mc run {tree.run_id}".strip()},
        }
    ]
    for node in tree.walk():
        args: dict = {"span_id": node.span_id}
        if node.scheme:
            args["scheme"] = node.scheme
        if node.error:
            args["error"] = True
        if node.calls != 1:
            args["calls"] = node.calls
        args.update(node.fields)
        events.append(
            {
                "name": node.label,
                "cat": node.name.split(".", 1)[0],
                "ph": "X",
                "ts": (node.start - t0) * 1e6,
                "dur": node.seconds * 1e6,
                "pid": 0,
                "tid": lanes[node.span_id],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def format_report(tree: TraceTree, top: int = 15) -> str:
    """Human-readable trace report: critical path + flat profile.

    The critical path descends through the largest child at every level;
    percentages are of the root (the run's wall clock).  The flat table
    ranks span names by *self* time — where the run actually burned its
    seconds once nested time is attributed to the nested spans.
    """
    root = tree.root
    wall = root.seconds or float("inf")
    lines = [
        f"Trace report — run {tree.run_id or '(unknown)'}: "
        f"{len(tree)} spans, {len(tree.roots)} root(s), "
        f"{len(tree.orphans)} orphan(s)",
        "",
        f"Critical path ({_fmt_seconds(root.seconds)} wall clock):",
    ]
    for depth, node in enumerate(critical_path(tree)):
        pct = 100.0 * node.seconds / wall
        calls = f"  (x{node.calls})" if node.calls != 1 else ""
        err = "  ERROR" if node.error else ""
        lines.append(
            f"  {pct:5.1f}%  {_fmt_seconds(node.seconds):>10}  "
            f"{'  ' * depth}{node.label}{calls}{err}"
        )
    lines += [
        "",
        f"Top {top} span names by self time:",
        f"  {'name':<28} {'count':>7} {'calls':>9} "
        f"{'total':>10} {'self':>10} {'%run':>6}",
    ]
    for row in aggregate_spans(tree)[:top]:
        lines.append(
            f"  {row['name']:<28} {row['count']:>7} {row['calls']:>9} "
            f"{_fmt_seconds(row['total_seconds']):>10} "
            f"{_fmt_seconds(row['self_seconds']):>10} "
            f"{100.0 * row['self_seconds'] / wall:>5.1f}%"
        )
    scheme_rows = aggregate_schemes(tree)
    if scheme_rows:
        lines += [
            "",
            "Per-scheme attribution:",
            f"  {'scheme':<12} {'span':<22} {'count':>7} {'calls':>9} "
            f"{'total':>10} {'%run':>6}",
        ]
        for row in scheme_rows:
            lines.append(
                f"  {row['scheme']:<12} {row['name']:<22} {row['count']:>7} "
                f"{row['calls']:>9} {_fmt_seconds(row['total_seconds']):>10} "
                f"{100.0 * row['total_seconds'] / wall:>5.1f}%"
            )
    errors = sum(1 for node in tree.walk() if node.error)
    if errors:
        lines += ["", f"{errors} span(s) closed on an exception (error=true)."]
    return "\n".join(lines)
