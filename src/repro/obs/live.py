"""Live telemetry: windowed time-series, Prometheus exposition, SLO rules.

The :mod:`repro.obs` registry answers "what happened over the whole
run"; this module answers "what is happening *right now*".  Three
pieces, all dependency-free and event-loop-friendly (every operation is
a handful of list/dict touches, never I/O):

* :class:`LiveMetrics` — a ring buffer of fixed-width time buckets per
  metric.  Counters give rates-over-window (``qps over the last 10 s``);
  value streams land in per-bucket :class:`~repro.obs.metrics.Histogram`
  objects whose fixed log-spaced edges make cross-bucket merges *exact*,
  so ``p95 over the last minute`` is computed by merging 60 bucket
  histograms, not by re-sampling.  Gauges are read-at-scrape callables
  (queue depth, warm-state seq, per-core utilization).
* :func:`render_prometheus` — text exposition (version 0.0.4) of a
  :class:`~repro.obs.metrics.MetricsRegistry` plus gauges, for
  ``GET /metrics?format=prometheus``.  Scheme-tagged metric names
  (``serve.admit.requests[ca-tpa]``) become labelled families
  (``serve_admit_requests_total{scheme="ca-tpa"}``).
* :class:`SloRule` / :class:`SloMonitor` — threshold rules over windows
  (``p95(serve.place.seconds) < 5ms``, ``rate(serve.rejected_503) == 0``)
  evaluated against a live window or an exported metrics snapshot; the
  monitor tracks ok→alert transitions so the daemon can emit one
  ``slo.alert`` event per violation edge instead of one per tick.

Nothing here touches the probe hot path: live windows are fed only by
the serve layer (which always runs instrumented) and read by the
``/metrics``-family endpoints and ``repro-mc top``.
"""

from __future__ import annotations

import math
import operator
import re
import time
from dataclasses import dataclass

from repro.obs.metrics import HIST_EDGES, Histogram, MetricsRegistry
from repro.types import ReproError

__all__ = [
    "LiveMetrics",
    "MetricsView",
    "SloMonitor",
    "SloResult",
    "SloRule",
    "parse_slo",
    "render_prometheus",
]

#: Default live-window geometry: 120 one-second buckets = two minutes
#: of history at one-second resolution.
DEFAULT_BUCKET_SECONDS = 1.0
DEFAULT_BUCKETS = 120


class _Ring:
    """Fixed-size ring of time buckets, keyed by absolute bucket index.

    ``slot(now)`` returns the bucket for the current time, zeroing any
    buckets skipped since the last touch — so an idle metric costs
    nothing until it is next written or read.
    """

    __slots__ = ("width", "slots", "last", "_zero")

    def __init__(self, width: float, size: int, zero):
        self.width = width
        self.slots = [zero() for _ in range(size)]
        self.last: int | None = None  #: absolute index of the newest bucket
        self._zero = zero

    def advance(self, now: float) -> int:
        """Roll the ring forward to ``now``; returns the current slot index."""
        bucket = int(now // self.width)
        if self.last is None:
            self.last = bucket
        elif bucket > self.last:
            size = len(self.slots)
            for stale in range(self.last + 1, min(bucket, self.last + size) + 1):
                self.slots[stale % size] = self._zero()
            self.last = bucket
        return self.last % len(self.slots)

    def recent(self, now: float, buckets: int) -> list:
        """The last ``buckets`` slots, oldest first, current (partial) last."""
        self.advance(now)
        size = len(self.slots)
        buckets = max(1, min(buckets, size))
        out = []
        for b in range(self.last - buckets + 1, self.last + 1):
            # Buckets before the ring ever started are empty by definition.
            out.append(self.slots[b % size] if b >= 0 else self._zero())
        return out


class LiveMetrics:
    """Windowed counters, histograms, and read-at-scrape gauges.

    ``clock`` defaults to :func:`time.monotonic`; tests inject a fake
    clock to step the window deterministically.  All window queries
    (``rate``/``total``/``window_histogram``) cover the most recent
    ``ceil(seconds / bucket_seconds)`` buckets *including* the current
    partial one, so a burst shows up immediately; ``seconds=None``
    means the whole retained window.
    """

    def __init__(
        self,
        *,
        bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
        buckets: int = DEFAULT_BUCKETS,
        clock=time.monotonic,
    ):
        if bucket_seconds <= 0:
            raise ReproError(f"bucket_seconds must be > 0, got {bucket_seconds}")
        if buckets < 2:
            raise ReproError(f"buckets must be >= 2, got {buckets}")
        self.bucket_seconds = float(bucket_seconds)
        self.buckets = int(buckets)
        self.clock = clock
        self.started = clock()
        self._counters: dict[str, _Ring] = {}
        self._histograms: dict[str, _Ring] = {}
        self._gauges: dict[str, object] = {}

    # -- writes --------------------------------------------------------

    def inc(self, name: str, n: float = 1) -> None:
        ring = self._counters.get(name)
        if ring is None:
            ring = self._counters[name] = _Ring(
                self.bucket_seconds, self.buckets, float
            )
        slot = ring.advance(self.clock())
        ring.slots[slot] += n

    def observe(self, name: str, value: float) -> None:
        ring = self._histograms.get(name)
        if ring is None:
            ring = self._histograms[name] = _Ring(
                self.bucket_seconds, self.buckets, Histogram
            )
        slot = ring.advance(self.clock())
        ring.slots[slot].observe(value)

    def gauge(self, name: str, source) -> None:
        """Register a gauge: a callable read at scrape time, or a value."""
        self._gauges[name] = source

    # -- reads ---------------------------------------------------------

    def _span(self, seconds: float | None) -> int:
        if seconds is None:
            return self.buckets
        return max(1, math.ceil(float(seconds) / self.bucket_seconds))

    def total(self, name: str, seconds: float | None = None) -> float:
        """Sum of a counter over the window (0.0 for unknown names)."""
        ring = self._counters.get(name)
        if ring is None:
            return 0.0
        return sum(ring.recent(self.clock(), self._span(seconds)))

    def rate(self, name: str, seconds: float | None = None) -> float:
        """Per-second rate of a counter over the window.

        The divisor is the covered span, clamped to the time the window
        has actually existed — a daemon 3 s old reports a burst as
        ``count/3``, not ``count/120``.
        """
        span_buckets = self._span(seconds)
        covered = span_buckets * self.bucket_seconds
        alive = max(self.clock() - self.started, self.bucket_seconds)
        return self.total(name, seconds) / max(min(covered, alive), 1e-9)

    def window_histogram(self, name: str, seconds: float | None = None) -> Histogram:
        """Exact merge of a value stream's bucket histograms over the window."""
        merged = Histogram(name)
        ring = self._histograms.get(name)
        if ring is not None:
            for hist in ring.recent(self.clock(), self._span(seconds)):
                merged.merge(hist)
        return merged

    def gauges(self) -> dict[str, float]:
        """Resolve every registered gauge to its current value."""
        out = {}
        for name, source in self._gauges.items():
            value = source() if callable(source) else source
            out[name] = float(value)
        return out

    def history(self) -> dict:
        """The ``GET /metrics/history`` body: every series, oldest first.

        Counter series are per-bucket sums; histogram series carry
        per-bucket ``count``/``p50``/``p95`` plus the exact merged
        digest of the whole window (``window``).  ``wall`` stamps the
        newest bucket's scrape time so consumers can place the series
        on a wall clock.
        """
        now = self.clock()
        counters = {}
        for name, ring in self._counters.items():
            counters[name] = {
                "values": list(ring.recent(now, self.buckets)),
                "rate": self.rate(name, 10.0),
            }
        histograms = {}
        for name, ring in self._histograms.items():
            slots = ring.recent(now, self.buckets)
            histograms[name] = {
                "count": [h.count for h in slots],
                "p50": [h.percentile(50.0) if h.count else None for h in slots],
                "p95": [h.percentile(95.0) if h.count else None for h in slots],
                "window": self.window_histogram(name).as_dict(),
            }
        return {
            "version": 1,
            "bucket_seconds": self.bucket_seconds,
            "buckets": self.buckets,
            "window_seconds": self.buckets * self.bucket_seconds,
            "wall": time.time(),
            "uptime_seconds": now - self.started,
            "counters": counters,
            "histograms": histograms,
            "gauges": self.gauges(),
        }

    # -- SLO view protocol --------------------------------------------

    def slo_value(self, fn: str, metric: str) -> float:
        """Answer one SLO term over the live window (see :func:`parse_slo`)."""
        if fn == "rate":
            return self.rate(metric)
        if fn == "count":
            return self.total(metric)
        if fn == "value":
            gauges = self.gauges()
            return gauges.get(metric, float("nan"))
        return self.window_histogram(metric).percentile(float(fn[1:]))


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_LABELLED = re.compile(r"^(?P<base>.*?)\[(?P<label>[^\]]+)\]$")
_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    mangled = _INVALID.sub("_", name)
    if not mangled or mangled[0].isdigit():
        mangled = f"_{mangled}"
    return mangled


def _split_name(name: str) -> tuple[str, str]:
    """``serve.admit.requests[ca-tpa]`` -> (mangled base, label pairs).

    Bracketed suffixes become labels: ``[key=value]`` keeps the key,
    a bare ``[value]`` is the scheme-tag convention used by the
    probe/partitioner counters.
    """
    match = _LABELLED.match(name)
    if not match:
        return _prom_name(name), ""
    base = _prom_name(match.group("base"))
    label = match.group("label")
    key, _, value = label.partition("=")
    if not value:
        key, value = "scheme", label
    value = value.replace("\\", "\\\\").replace('"', '\\"')
    return base, f'{_prom_name(key)}="{value}"'


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return format(value, ".10g")


def render_prometheus(
    registry: MetricsRegistry | None,
    *,
    gauges: dict[str, float] | None = None,
) -> str:
    """Prometheus text exposition (0.0.4) of a registry + gauge readings.

    Counters become ``<name>_total`` counter families, summaries become
    ``summary`` families with ``quantile`` labels (reservoir-approximate
    — prefer the histograms), histograms become native ``histogram``
    families with the full fixed ``le`` ladder (cross-scrape merges by
    any consumer stay exact), and gauge readings become ``gauge``
    families.  Output groups samples by family and is sorted, so diffs
    are stable.
    """
    families: dict[tuple[str, str], list[str]] = {}

    def sample(base: str, kind: str, suffix: str, labels: str, value: float):
        family = families.setdefault((base, kind), [])
        label_part = f"{{{labels}}}" if labels else ""
        family.append(f"{base}{suffix}{label_part} {_fmt(value)}")

    registry = registry if registry is not None else MetricsRegistry()
    for name in sorted(registry.counters):
        base, labels = _split_name(name)
        sample(f"{base}_total", "counter", "", labels, registry.counters[name].value)
    for name in sorted(registry.summaries):
        summary = registry.summaries[name]
        base, labels = _split_name(name)
        if summary.count:
            for q in (50.0, 95.0):
                joined = f'quantile="{q / 100}"'
                if labels:
                    joined = f"{labels},{joined}"
                sample(base, "summary", "", joined, summary.percentile(q))
        sample(base, "summary", "_sum", labels, summary.total)
        sample(base, "summary", "_count", labels, summary.count)
    for name in sorted(registry.histograms):
        hist = registry.histograms[name]
        base, labels = _split_name(name)
        cumulative = 0
        for edge, n in zip(HIST_EDGES, hist.counts):
            cumulative += n
            joined = f'le="{_fmt(edge)}"'
            if labels:
                joined = f"{labels},{joined}"
            sample(base, "histogram", "_bucket", joined, cumulative)
        joined = 'le="+Inf"'
        if labels:
            joined = f"{labels},{joined}"
        sample(base, "histogram", "_bucket", joined, hist.count)
        sample(base, "histogram", "_sum", labels, hist.total)
        sample(base, "histogram", "_count", labels, hist.count)
    for name in sorted(gauges or {}):
        base, labels = _split_name(name)
        sample(base, "gauge", "", labels, (gauges or {})[name])

    lines: list[str] = []
    for (base, kind) in sorted(families):
        lines.append(f"# TYPE {base} {kind}")
        # Samples keep insertion order: histogram buckets must stay in
        # increasing ``le`` order (name-sorted iteration above already
        # makes the overall output deterministic).
        lines.extend(families[(base, kind)])
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# SLO rules
# ----------------------------------------------------------------------

_SLO_RE = re.compile(
    r"^\s*(?P<fn>p50|p90|p95|p99|rate|count|value)\s*"
    r"\(\s*(?P<metric>[^\s()]+)\s*\)\s*"
    r"(?P<op><=|>=|==|!=|<|>)\s*"
    r"(?P<threshold>[-+]?[0-9.]+(?:[eE][-+]?[0-9]+)?)\s*(?P<unit>us|ms|s)?\s*$"
)

_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}

_UNITS = {None: 1.0, "s": 1.0, "ms": 1e-3, "us": 1e-6}


@dataclass(frozen=True)
class SloRule:
    """One threshold rule: ``fn(metric) op threshold``.

    ``fn`` is one of ``p50/p90/p95/p99`` (percentile of a histogram
    stream, seconds), ``rate`` (counter per-second over the window),
    ``count`` (counter total over the window), or ``value`` (gauge).
    Thresholds accept ``us``/``ms``/``s`` suffixes, normalized to
    seconds.
    """

    text: str
    fn: str
    metric: str
    op: str
    threshold: float

    def describe(self) -> str:
        return f"{self.fn}({self.metric}) {self.op} {self.threshold:g}"


@dataclass(frozen=True)
class SloResult:
    """One evaluation: the measured value and whether the rule held."""

    rule: SloRule
    value: float
    ok: bool


def parse_slo(text: str) -> SloRule:
    """Parse ``"p95(serve.place.seconds) < 5ms"`` into an :class:`SloRule`."""
    match = _SLO_RE.match(text)
    if match is None:
        raise ReproError(
            f"bad SLO rule {text!r}; expected e.g. "
            "'p95(serve.place.seconds) < 5ms' or 'rate(serve.rejected_503) == 0'"
        )
    threshold = float(match.group("threshold")) * _UNITS[match.group("unit")]
    return SloRule(
        text=text.strip(),
        fn=match.group("fn"),
        metric=match.group("metric"),
        op=match.group("op"),
        threshold=threshold,
    )


def evaluate_slo(rule: SloRule, view) -> SloResult:
    """Evaluate one rule against any view with ``slo_value(fn, metric)``.

    A NaN measurement (unknown metric, empty window) fails every
    comparison — an SLO over a metric that never reported is treated as
    violated, not vacuously met.
    """
    value = float(view.slo_value(rule.fn, rule.metric))
    ok = value == value and bool(_OPS[rule.op](value, rule.threshold))
    return SloResult(rule=rule, value=value, ok=ok)


class MetricsView:
    """SLO view over an exported metrics snapshot (post-mortem gating).

    ``snapshot`` is the ``{"counters", "summaries", "histograms"}`` dict
    a metrics dump carries.  ``elapsed`` (seconds) turns counter totals
    into rates; without it, ``rate`` degenerates to the total count,
    which is still exact for ``== 0`` gates.
    """

    def __init__(self, snapshot: dict, *, elapsed: float | None = None):
        self.snapshot = snapshot or {}
        self.elapsed = elapsed

    def slo_value(self, fn: str, metric: str) -> float:
        if fn in ("rate", "count"):
            count = float(self.snapshot.get("counters", {}).get(metric, 0))
            if fn == "rate" and self.elapsed:
                return count / self.elapsed
            return count
        if fn == "value":
            return float("nan")  # snapshots carry no gauges
        digest = self.snapshot.get("histograms", {}).get(metric)
        if digest is None:
            digest = self.snapshot.get("summaries", {}).get(metric)
        if not digest or not digest.get("count"):
            return float("nan")
        value = digest.get(fn)
        return float(value) if value is not None else float("nan")


class SloMonitor:
    """Edge-triggered SLO evaluation for the daemon's periodic check.

    :meth:`check` returns ``(results, newly_failing, newly_ok)`` so the
    caller can emit one alert per ok→fail transition (and one recovery
    per fail→ok) instead of re-alerting every tick.  :attr:`failing`
    holds the rules currently in violation.
    """

    def __init__(self, rules: list[SloRule] | tuple[SloRule, ...]):
        self.rules = tuple(rules)
        self.failing: set[str] = set()
        self.alerts = 0

    def check(
        self, view
    ) -> tuple[list[SloResult], list[SloResult], list[SloResult]]:
        results = [evaluate_slo(rule, view) for rule in self.rules]
        newly_failing = []
        newly_ok = []
        for result in results:
            key = result.rule.text
            if not result.ok and key not in self.failing:
                self.failing.add(key)
                self.alerts += 1
                newly_failing.append(result)
            elif result.ok and key in self.failing:
                self.failing.discard(key)
                newly_ok.append(result)
        return results, newly_failing, newly_ok
