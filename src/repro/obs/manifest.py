"""Run manifests: the provenance record written next to each artifact.

A manifest answers "what produced this ``SweepArtifact`` and what did
the run look like?" without re-running anything: package version and git
describe, the exact CLI argv, the engine's cache/shard statistics, and
the metrics snapshot of the instrumentation registry.  The CLI writes
``<figure>.manifest.json`` next to ``<figure>.json`` (``--json DIR``)
and ``repro-mc inspect`` pretty-prints it.

The manifest is *about* a run, not part of it: timestamps and run ids
live here, never inside the artifact, which stays bit-identical across
instrumented and uninstrumented runs.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from pathlib import Path

from repro._version import __version__
from repro.types import ReproError

__all__ = [
    "MANIFEST_VERSION",
    "git_describe",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "manifest_path_for",
    "format_manifest",
]

#: Version of the manifest JSON layout.
MANIFEST_VERSION = 1


def git_describe() -> str | None:
    """``git describe --always --dirty`` of the source tree, if available.

    Returns ``None`` for installed packages outside a work tree, when
    git is missing, or on any error — provenance is best-effort and must
    never break a run.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    described = out.stdout.strip()
    return described or None


def _sha256_of(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def build_manifest(
    *,
    run_id: str,
    command: list[str] | None = None,
    figure: str | None = None,
    sets: int | None = None,
    seed: int | None = None,
    jobs: int | None = None,
    artifact_path: Path | str | None = None,
    engine_stats: dict | None = None,
    metrics: dict | None = None,
    events_log: str | None = None,
) -> dict:
    """Assemble one manifest dict (see docs/API.md, "Run manifests")."""
    artifact = None
    if artifact_path is not None:
        p = Path(artifact_path)
        artifact = {"path": p.name, "sha256": _sha256_of(p)}
    return {
        "manifest_version": MANIFEST_VERSION,
        "run_id": run_id,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "repro_version": __version__,
        "git_describe": git_describe(),
        "command": list(command) if command is not None else None,
        "figure": figure,
        "sets": sets,
        "seed": seed,
        "jobs": jobs,
        "artifact": artifact,
        "engine": engine_stats,
        "metrics": metrics,
        "events_log": events_log,
    }


def manifest_path_for(artifact_path: Path | str) -> Path:
    """``<dir>/fig1.json`` -> ``<dir>/fig1.manifest.json``."""
    p = Path(artifact_path)
    return p.with_name(f"{p.stem}.manifest.json")


def write_manifest(path: Path | str, manifest: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, allow_nan=False) + "\n")
    return path


def load_manifest(path: Path | str) -> dict:
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read run manifest {path}: {exc}") from exc
    version = data.get("manifest_version")
    if version != MANIFEST_VERSION:
        raise ReproError(
            f"unsupported manifest version {version!r} in {path}"
            f" (this build reads version {MANIFEST_VERSION})"
        )
    return data


def _format_summary_row(name: str, s: dict) -> str:
    if not s["count"]:
        return f"  {name:<40} (empty)"
    return (
        f"  {name:<40} n={s['count']:<8} total={s['total']:.4g} "
        f"min={s['min']:.4g} p50={s['p50']:.4g} p95={s['p95']:.4g} "
        f"max={s['max']:.4g}"
    )


def _format_histogram_row(name: str, h: dict) -> str:
    if not h["count"]:
        return f"  {name:<40} (empty)"
    row = (
        f"  {name:<40} n={h['count']:<8} p50={h['p50']:.4g} "
        f"p95={h['p95']:.4g} p99={h['p99']:.4g} max={h['max']:.4g}"
    )
    overflow = h.get("overflow", 0)
    if overflow:
        row += f" overflow={overflow}"
    return row


def format_manifest(manifest: dict, *, top: int = 20) -> str:
    """Human-readable rendering for ``repro-mc inspect``.

    Counters are sorted by value (descending) and truncated to ``top``
    rows; summaries and histograms print their full bounded digests
    (histogram rows include the overflow-bucket count when non-zero).
    """
    lines = [
        f"Run manifest (v{manifest['manifest_version']})",
        f"  run_id        {manifest['run_id']}",
        f"  created       {manifest['created']}",
        f"  repro version {manifest['repro_version']}"
        + (
            f" ({manifest['git_describe']})"
            if manifest.get("git_describe")
            else ""
        ),
    ]
    if manifest.get("command"):
        lines.append(f"  command       repro-mc {' '.join(manifest['command'])}")
    if manifest.get("figure"):
        run_shape = (
            f"  figure        {manifest['figure']}"
            f"  (sets={manifest.get('sets')}, seed={manifest.get('seed')},"
            f" jobs={manifest.get('jobs')})"
        )
        lines.append(run_shape)
    artifact = manifest.get("artifact")
    if artifact:
        lines.append(
            f"  artifact      {artifact['path']}"
            f"  sha256={artifact['sha256'][:12]}..."
        )
    if manifest.get("events_log"):
        lines.append(f"  events log    {manifest['events_log']}")

    engine = manifest.get("engine")
    if engine:
        lines.append("")
        lines.append("Engine")
        lines.append(
            f"  {engine.get('shards_planned', 0)} shards planned over "
            f"{engine.get('points', 0)} points: "
            f"{engine.get('cache_hits', 0)} cache hits, "
            f"{engine.get('cache_misses', 0)} misses, "
            f"{engine.get('shards_computed', 0)} computed in "
            f"{engine.get('compute_seconds', 0.0):.2f}s"
        )
        shard_seconds = engine.get("shard_seconds")
        if shard_seconds:
            lines.append(_format_summary_row("shard_seconds", shard_seconds))
        shard_hist = engine.get("shard_seconds_hist")
        if shard_hist:
            lines.append(
                _format_histogram_row("shard_seconds_hist", shard_hist)
            )

    metrics = manifest.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        lines.append("")
        lines.append(f"Counters (top {min(top, len(counters))} of {len(counters)})")
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, value in ranked[:top]:
            lines.append(f"  {name:<52} {value:>12}")
    summaries = metrics.get("summaries") or {}
    if summaries:
        lines.append("")
        lines.append("Summaries")
        for name in sorted(summaries):
            lines.append(_format_summary_row(name, summaries[name]))
    histograms = metrics.get("histograms") or {}
    if histograms:
        lines.append("")
        lines.append("Histograms")
        for name in sorted(histograms):
            lines.append(_format_histogram_row(name, histograms[name]))
    return "\n".join(lines)
