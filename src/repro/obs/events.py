"""Structured event sink: JSON lines, one object per event.

Every line carries the run id, a monotonically increasing sequence
number, a wall-clock timestamp, and the event name; the rest of the
object is the event's payload.  The format is append-only and
line-delimited so a crashed run still leaves a readable prefix, and
``jq``-style tooling works directly on the file::

    {"run_id": "r-1a2b...", "seq": 7, "ts": 1754..., "event": "engine.shard",
     "start": 0, "count": 250, "cached": false, "seconds": 1.93}

Payload values must be JSON-serializable; non-serializable values are
replaced by their ``repr`` rather than killing the run — a telemetry
layer must never be the thing that aborts an experiment.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path

__all__ = ["EventSink", "JsonlSink", "ENVELOPE_KEYS"]

#: Keys owned by the event envelope.  A payload field with one of these
#: names is written as ``payload_<name>`` instead of silently
#: overwriting the envelope (see :func:`make_event`).
ENVELOPE_KEYS = frozenset({"run_id", "seq", "ts", "event"})


def _fallback_repr(value: object) -> str:
    return repr(value)


class EventSink:
    """Minimal interface: :meth:`emit` one event dict, :meth:`close`."""

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface
        pass


class JsonlSink(EventSink):
    """Append JSON-lines events to a file (or an open text stream).

    Opening a path truncates any existing file — a sink belongs to one
    run.  Each event is flushed immediately so ``tail -f`` works on a
    live run and a crash loses at most the event being written.
    """

    def __init__(self, target: str | os.PathLike | io.TextIOBase):
        if isinstance(target, (str, os.PathLike)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = path.open("w", encoding="utf-8")
            self._owns_stream = True
            self.path: Path | None = path
        else:
            self._stream = target
            self._owns_stream = False
            self.path = None
        self.events_written = 0

    def emit(self, event: dict) -> None:
        line = json.dumps(
            event, separators=(",", ":"), default=_fallback_repr, sort_keys=False
        )
        self._stream.write(line + "\n")
        self._stream.flush()
        self.events_written += 1

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()


def make_event(run_id: str, seq: int, name: str, payload: dict) -> dict:
    """The canonical envelope: id/seq/ts first, then the payload fields.

    Payload keys that collide with the envelope (``run_id``, ``seq``,
    ``ts``, ``event``) are prefixed with ``payload_`` — the envelope is
    load-bearing for offline reconstruction, so a caller must never be
    able to clobber it.
    """
    event = {"run_id": run_id, "seq": seq, "ts": time.time(), "event": name}
    for key, value in payload.items():
        event[f"payload_{key}" if key in ENVELOPE_KEYS else key] = value
    return event
