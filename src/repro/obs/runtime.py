"""The process-local instrumentation switchboard.

One module-level singleton, :data:`OBS`, holds the whole state: an
``enabled`` flag, the active :class:`~repro.obs.metrics.MetricsRegistry`,
an optional structured event sink, the current run id, the current
scheme tag, and the span machinery (open-span stack + completed span
records).  The contract with instrumented call sites is:

* **Disabled (default)** — call sites guard every metric touch with
  ``if OBS.enabled:``, so the entire cost of the layer is one attribute
  load and a branch (the probe-overhead benchmark pins this at < 2 % of
  the Theorem-1 probe hot path).  :func:`span` costs two branch checks
  and does **zero** span bookkeeping when disabled.
* **Enabled** — counters/summaries accumulate into ``OBS.registry``,
  :func:`emit` appends structured events to the sink (if any), and every
  :func:`span` block becomes a node of a hierarchical trace: it gets a
  process-unique ``span_id``, the ``span_id`` of the innermost enclosing
  span as ``parent_id``, and its completed record is buffered on
  ``OBS.spans`` for later analysis/export (:mod:`repro.obs.trace`).

:func:`instrument` is the front door: a context manager that enables
instrumentation with a fresh registry (and optional JSONL sink), and
restores the previous state on exit — safe to nest, safe under
exceptions.  :func:`collect` is the worker-process variant the engine
uses to gather counters *and spans* on the far side of a
``ProcessPoolExecutor`` and ship them back; the parent re-roots the
worker's span records under its own shard span with
:func:`adopt_spans`, so one sweep yields one coherent trace tree.

Instrumentation never influences results: it adds no RNG draws and no
floating-point work on any value that reaches an artifact, so runs with
and without it are bit-identical (pinned by the engine test suite).
"""

from __future__ import annotations

import secrets
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.obs.events import EventSink, JsonlSink, make_event
from repro.obs.metrics import Counter, Histogram, MetricsRegistry, Summary

__all__ = [
    "OBS",
    "MAX_SPAN_RECORDS",
    "SPAN_RESERVED_KEYS",
    "new_run_id",
    "enable",
    "disable",
    "counter",
    "summary",
    "histogram",
    "emit",
    "span",
    "record_span",
    "add_span_time",
    "current_span_id",
    "drain_spans",
    "adopt_spans",
    "scheme_tag",
    "instrument",
    "collect",
]

#: Completed span records buffered per process before new ones are
#: dropped (and counted in ``trace.spans_dropped``).  A record is a
#: small dict, so the cap bounds trace memory at a few tens of MB even
#: for pathological span rates.
MAX_SPAN_RECORDS = 200_000

#: Span-record keys owned by the runtime; user fields passed to
#: :func:`span` / :func:`record_span` never overwrite them.
SPAN_RESERVED_KEYS = frozenset(
    {"span_id", "parent_id", "name", "start", "seconds", "error", "scheme", "calls"}
)


class _SpanFrame:
    """One open span on the per-process span stack."""

    __slots__ = ("span_id", "parent_id", "name", "start", "perf_start", "buckets")

    def __init__(self, span_id: int, parent_id: int | None, name: str):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = time.time()
        self.perf_start = time.perf_counter()
        #: synthetic child-time buckets: name -> [seconds, calls]
        self.buckets: dict[str, list] = {}


#: The active partitioning-scheme tag ("" = none).  A
#: :class:`~contextvars.ContextVar` rather than a plain attribute of the
#: singleton: two threads (or asyncio tasks) running partitioning
#: attempts concurrently — e.g. the admission daemon's coordinator next
#: to an in-process sweep — must not stamp each other's counters and
#: span records with the wrong scheme.
_SCHEME: ContextVar[str] = ContextVar("repro_obs_scheme", default="")


class _ObsState:
    """Mutable singleton; read ``OBS.enabled`` on hot paths."""

    __slots__ = (
        "enabled",
        "registry",
        "sink",
        "run_id",
        "seq",
        "span_stack",
        "spans",
        "next_span_id",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.sink: EventSink | None = None
        self.run_id = ""
        self.seq = 0
        self.span_stack: list[_SpanFrame] = []
        self.spans: list[dict] = []  #: completed span records
        self.next_span_id = 1

    @property
    def scheme(self) -> str:
        """Current partitioning-scheme tag of *this* context ("" = none)."""
        return _SCHEME.get()

    @scheme.setter
    def scheme(self, value: str) -> None:
        _SCHEME.set(value)

    def _snapshot_state(self) -> tuple:
        return (
            self.enabled,
            self.registry,
            self.sink,
            self.run_id,
            self.scheme,
            self.seq,
            self.span_stack,
            self.spans,
            self.next_span_id,
        )

    def _restore_state(self, state: tuple) -> None:
        (
            self.enabled,
            self.registry,
            self.sink,
            self.run_id,
            self.scheme,
            self.seq,
            self.span_stack,
            self.spans,
            self.next_span_id,
        ) = state


OBS = _ObsState()


def new_run_id() -> str:
    """A short, unique, sortable-ish run identifier (``r-<hex>``)."""
    return f"r-{int(time.time()):x}{secrets.token_hex(4)}"


def enable(
    *,
    sink: EventSink | None = None,
    run_id: str | None = None,
    registry: MetricsRegistry | None = None,
) -> str:
    """Turn instrumentation on in this process; returns the run id.

    Prefer the :func:`instrument` context manager, which restores the
    previous state; ``enable``/``disable`` are the raw switches.
    """
    OBS.enabled = True
    OBS.registry = registry if registry is not None else MetricsRegistry()
    OBS.sink = sink
    OBS.run_id = run_id if run_id is not None else new_run_id()
    OBS.seq = 0
    OBS.span_stack = []
    OBS.spans = []
    OBS.next_span_id = 1
    return OBS.run_id


def disable() -> None:
    """Turn instrumentation off (the sink, if any, is left open)."""
    OBS.enabled = False
    OBS.sink = None
    OBS.run_id = ""
    OBS.scheme = ""
    OBS.span_stack = []
    OBS.spans = []


def counter(name: str) -> Counter:
    """The named counter of the active registry (created on first use)."""
    return OBS.registry.counter(name)


def summary(name: str) -> Summary:
    """The named summary of the active registry (created on first use)."""
    return OBS.registry.summary(name)


def histogram(name: str) -> Histogram:
    """The named histogram of the active registry (created on first use)."""
    return OBS.registry.histogram(name)


def emit(event: str, **payload) -> None:
    """Append one structured event to the sink (no-op when disabled/sinkless)."""
    if not OBS.enabled or OBS.sink is None:
        return
    OBS.seq += 1
    OBS.sink.emit(make_event(OBS.run_id, OBS.seq, event, payload))


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def _next_span_id() -> int:
    span_id = OBS.next_span_id
    OBS.next_span_id = span_id + 1
    return span_id


def current_span_id() -> int | None:
    """The ``span_id`` of the innermost open span (``None`` outside any)."""
    stack = OBS.span_stack
    return stack[-1].span_id if stack else None


def _store_record(record: dict) -> None:
    """Buffer one completed record (bounded) and mirror it to the sink."""
    if len(OBS.spans) >= MAX_SPAN_RECORDS:
        OBS.registry.counter("trace.spans_dropped").inc()
        return
    OBS.spans.append(record)
    if OBS.sink is not None:
        emit(f"span.{record['name']}", **record)


def _finish_record(
    span_id: int,
    parent_id: int | None,
    name: str,
    start: float,
    seconds: float,
    error: bool,
    fields: dict,
    calls: int | None = None,
) -> dict:
    """Build + buffer one span record; observes ``<name>.seconds``."""
    OBS.registry.summary(f"{name}.seconds").observe(seconds)
    record: dict = {
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start": start,
        "seconds": seconds,
        "error": error,
    }
    if OBS.scheme:
        record["scheme"] = OBS.scheme
    if calls is not None:
        record["calls"] = calls
    for key, value in fields.items():
        if key not in SPAN_RESERVED_KEYS:
            record[key] = value
    _store_record(record)
    return record


def _flush_buckets(frame: _SpanFrame) -> None:
    """Turn a closing frame's accumulated buckets into synthetic children.

    A bucket is an *aggregate* child span: ``calls`` probe invocations
    that each ran too briefly to justify a record of their own, rolled
    into one record whose ``seconds`` is their exact total.  Its
    ``start`` is inherited from the parent (exporters lay synthetic
    siblings out sequentially; see :mod:`repro.obs.trace`).
    """
    for bucket_name, (seconds, calls) in frame.buckets.items():
        _finish_record(
            _next_span_id(),
            frame.span_id,
            bucket_name,
            frame.start,
            seconds,
            False,
            {"synthetic": True},
            calls=calls,
        )


@contextmanager
def span(name: str, **fields) -> Iterator[None]:
    """Time a block: observes ``<name>.seconds`` and records a trace span.

    When instrumentation is disabled the block runs with no timing at
    all (two branch checks), so spans are safe on warm paths.  Enabled,
    the block becomes a node of the process's span tree: it is pushed on
    the span stack (so nested spans/probe buckets attach to it), and on
    exit a completed record — ``span_id``, ``parent_id``, ``name``,
    ``start`` (epoch seconds), ``seconds``, ``error``, the active
    ``scheme`` tag, and ``fields`` — is buffered on ``OBS.spans`` and
    emitted to the sink as a ``span.<name>`` event.

    If the block raises, the span is recorded with ``error=true`` and
    the exception propagates unchanged.
    """
    if not OBS.enabled:
        yield
        return
    frame = _SpanFrame(_next_span_id(), current_span_id(), name)
    OBS.span_stack.append(frame)
    error = False
    try:
        yield
    except BaseException:
        error = True
        raise
    finally:
        seconds = time.perf_counter() - frame.perf_start
        OBS.span_stack.pop()
        _finish_record(
            frame.span_id,
            frame.parent_id,
            name,
            frame.start,
            seconds,
            error,
            fields,
        )
        _flush_buckets(frame)


def record_span(
    name: str,
    *,
    start: float,
    seconds: float,
    parent_id: int | None = None,
    error: bool = False,
    **fields,
) -> int | None:
    """Record an explicitly-timed span (no stack involvement).

    For intervals that cannot be a ``with`` block — e.g. the parent
    engine's per-shard submit→receive windows, which overlap each other
    while worker processes run concurrently.  ``parent_id`` defaults to
    the innermost open span.  Returns the new ``span_id`` (``None`` when
    instrumentation is disabled) so callers can adopt child spans under
    it with :func:`adopt_spans`.
    """
    if not OBS.enabled:
        return None
    if parent_id is None:
        parent_id = current_span_id()
    span_id = _next_span_id()
    _finish_record(span_id, parent_id, name, start, seconds, error, fields)
    return span_id


def add_span_time(name: str, seconds: float, calls: int = 1) -> None:
    """Attribute ``seconds`` to an aggregate child of the innermost span.

    The probe layer calls this once per probe (only when enabled):
    individual probes are far too frequent to record as spans, but their
    exact total per enclosing span — "this ``partition.attempt`` spent
    0.8 of its 1.1 seconds in 214 Theorem-1 probes" — is what the
    critical path needs.  No-op outside any open span.
    """
    stack = OBS.span_stack
    if not stack:
        return
    buckets = stack[-1].buckets
    bucket = buckets.get(name)
    if bucket is None:
        buckets[name] = [seconds, calls]
    else:
        bucket[0] += seconds
        bucket[1] += calls


def drain_spans() -> list[dict]:
    """Return (and clear) the buffered completed-span records.

    The engine's worker entry point calls this inside :func:`collect`
    and ships the records back with the shard result.
    """
    records = OBS.spans
    OBS.spans = []
    return records


def adopt_spans(records: list[dict], parent_id: int | None) -> list[dict]:
    """Re-root another process's span records under ``parent_id``.

    Worker span ids live in the worker's own id namespace; adoption
    assigns each record a fresh local id, rewrites child→parent edges
    through the id map, attaches the worker's root spans (``parent_id``
    ``None``) to ``parent_id``, buffers the rewritten records, and
    mirrors them to the sink — so the parent's ``events.jsonl`` carries
    the complete cross-process tree.  Returns the rewritten records.
    """
    if not OBS.enabled or not records:
        return []
    id_map = {record["span_id"]: _next_span_id() for record in records}
    adopted = []
    for record in records:
        rewritten = dict(record)
        rewritten["span_id"] = id_map[record["span_id"]]
        old_parent = record.get("parent_id")
        rewritten["parent_id"] = id_map.get(old_parent, parent_id)
        _store_record(rewritten)
        adopted.append(rewritten)
    return adopted


@contextmanager
def scheme_tag(name: str) -> Iterator[None]:
    """Tag metrics recorded inside the block with a scheme name.

    Used by :meth:`repro.partition.base.Partitioner.partition` so the
    probe/Theorem-1 counters recorded deep in the analysis layer can be
    attributed per scheme (``theorem1.cond_pass.k2[ca-tpa]``).  Span
    records closed inside the block carry the tag as their ``scheme``
    field, which the trace analysis uses for per-scheme attribution.

    The tag lives on a :class:`~contextvars.ContextVar`, so concurrent
    threads/async tasks each see only their own scheme.
    """
    token = _SCHEME.set(name)
    try:
        yield
    finally:
        _SCHEME.reset(token)


@contextmanager
def instrument(
    *,
    log_path=None,
    sink: EventSink | None = None,
    run_id: str | None = None,
) -> Iterator[_ObsState]:
    """Enable instrumentation for a block; restore prior state on exit.

    ``log_path`` opens a :class:`~repro.obs.events.JsonlSink` (closed on
    exit); alternatively pass an existing ``sink`` (left open — the
    caller owns it).  Yields :data:`OBS` so callers can read
    ``OBS.registry`` / ``OBS.run_id`` / ``OBS.spans``.
    """
    saved = OBS._snapshot_state()
    owned_sink = JsonlSink(log_path) if log_path is not None else None
    try:
        enable(sink=owned_sink if owned_sink is not None else sink, run_id=run_id)
        yield OBS
    finally:
        OBS._restore_state(saved)
        if owned_sink is not None:
            owned_sink.close()


@contextmanager
def collect() -> Iterator[MetricsRegistry]:
    """Worker-side collection: a fresh registry, no sink, prior state restored.

    The engine wraps each worker-process shard in this and returns
    ``registry.dump()`` plus :func:`drain_spans` with the shard result;
    the parent merges the dump into its own registry and re-roots the
    spans with :func:`adopt_spans`, so per-scheme probe counters *and*
    the span tree survive the process boundary.
    """
    saved = OBS._snapshot_state()
    try:
        enable(sink=None, run_id=saved[3] or new_run_id())
        yield OBS.registry
    finally:
        OBS._restore_state(saved)
