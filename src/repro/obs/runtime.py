"""The process-local instrumentation switchboard.

One module-level singleton, :data:`OBS`, holds the whole state: an
``enabled`` flag, the active :class:`~repro.obs.metrics.MetricsRegistry`,
an optional structured event sink, the current run id, and the current
scheme tag.  The contract with instrumented call sites is:

* **Disabled (default)** — call sites guard every metric touch with
  ``if OBS.enabled:``, so the entire cost of the layer is one attribute
  load and a branch (the probe-overhead benchmark pins this at < 2 % of
  the Theorem-1 probe hot path).
* **Enabled** — counters/summaries accumulate into ``OBS.registry``
  and :func:`emit` appends structured events to the sink (if any).

:func:`instrument` is the front door: a context manager that enables
instrumentation with a fresh registry (and optional JSONL sink), and
restores the previous state on exit — safe to nest, safe under
exceptions.  :func:`collect` is the worker-process variant the engine
uses to gather counters on the far side of a ``ProcessPoolExecutor``
and ship them back as a :meth:`~repro.obs.metrics.MetricsRegistry.dump`.

Instrumentation never influences results: it adds no RNG draws and no
floating-point work on any value that reaches an artifact, so runs with
and without it are bit-identical (pinned by the engine test suite).
"""

from __future__ import annotations

import secrets
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.events import EventSink, JsonlSink, make_event
from repro.obs.metrics import Counter, MetricsRegistry, Summary

__all__ = [
    "OBS",
    "new_run_id",
    "enable",
    "disable",
    "counter",
    "summary",
    "emit",
    "span",
    "scheme_tag",
    "instrument",
    "collect",
]


class _ObsState:
    """Mutable singleton; read ``OBS.enabled`` on hot paths."""

    __slots__ = ("enabled", "registry", "sink", "run_id", "scheme", "seq")

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.sink: EventSink | None = None
        self.run_id = ""
        self.scheme = ""  #: current partitioning-scheme tag ("" = none)
        self.seq = 0

    def _snapshot_state(self) -> tuple:
        return (
            self.enabled,
            self.registry,
            self.sink,
            self.run_id,
            self.scheme,
            self.seq,
        )

    def _restore_state(self, state: tuple) -> None:
        (
            self.enabled,
            self.registry,
            self.sink,
            self.run_id,
            self.scheme,
            self.seq,
        ) = state


OBS = _ObsState()


def new_run_id() -> str:
    """A short, unique, sortable-ish run identifier (``r-<hex>``)."""
    return f"r-{int(time.time()):x}{secrets.token_hex(4)}"


def enable(
    *,
    sink: EventSink | None = None,
    run_id: str | None = None,
    registry: MetricsRegistry | None = None,
) -> str:
    """Turn instrumentation on in this process; returns the run id.

    Prefer the :func:`instrument` context manager, which restores the
    previous state; ``enable``/``disable`` are the raw switches.
    """
    OBS.enabled = True
    OBS.registry = registry if registry is not None else MetricsRegistry()
    OBS.sink = sink
    OBS.run_id = run_id if run_id is not None else new_run_id()
    OBS.seq = 0
    return OBS.run_id


def disable() -> None:
    """Turn instrumentation off (the sink, if any, is left open)."""
    OBS.enabled = False
    OBS.sink = None
    OBS.run_id = ""
    OBS.scheme = ""


def counter(name: str) -> Counter:
    """The named counter of the active registry (created on first use)."""
    return OBS.registry.counter(name)


def summary(name: str) -> Summary:
    """The named summary of the active registry (created on first use)."""
    return OBS.registry.summary(name)


def emit(event: str, **payload) -> None:
    """Append one structured event to the sink (no-op when disabled/sinkless)."""
    if not OBS.enabled or OBS.sink is None:
        return
    OBS.seq += 1
    OBS.sink.emit(make_event(OBS.run_id, OBS.seq, event, payload))


@contextmanager
def span(name: str, **fields) -> Iterator[None]:
    """Time a block: observes ``<name>.seconds`` and emits a span event.

    When instrumentation is disabled the block runs with no timing at
    all (two branch checks), so spans are safe on warm paths.
    """
    if not OBS.enabled:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        seconds = time.perf_counter() - start
        OBS.registry.summary(f"{name}.seconds").observe(seconds)
        emit(f"span.{name}", seconds=seconds, **fields)


@contextmanager
def scheme_tag(name: str) -> Iterator[None]:
    """Tag metrics recorded inside the block with a scheme name.

    Used by :meth:`repro.partition.base.Partitioner.partition` so the
    probe/Theorem-1 counters recorded deep in the analysis layer can be
    attributed per scheme (``theorem1.cond_pass.k2[ca-tpa]``).
    """
    previous = OBS.scheme
    OBS.scheme = name
    try:
        yield
    finally:
        OBS.scheme = previous


@contextmanager
def instrument(
    *,
    log_path=None,
    sink: EventSink | None = None,
    run_id: str | None = None,
) -> Iterator[_ObsState]:
    """Enable instrumentation for a block; restore prior state on exit.

    ``log_path`` opens a :class:`~repro.obs.events.JsonlSink` (closed on
    exit); alternatively pass an existing ``sink`` (left open — the
    caller owns it).  Yields :data:`OBS` so callers can read
    ``OBS.registry`` / ``OBS.run_id``.
    """
    saved = OBS._snapshot_state()
    owned_sink = JsonlSink(log_path) if log_path is not None else None
    try:
        enable(sink=owned_sink if owned_sink is not None else sink, run_id=run_id)
        yield OBS
    finally:
        OBS._restore_state(saved)
        if owned_sink is not None:
            owned_sink.close()


@contextmanager
def collect() -> Iterator[MetricsRegistry]:
    """Worker-side collection: a fresh registry, no sink, prior state restored.

    The engine wraps each worker-process shard in this and returns
    ``registry.dump()`` with the shard result; the parent merges the
    dump into its own registry, so per-scheme probe and Theorem-1
    counters survive the process boundary.
    """
    saved = OBS._snapshot_state()
    try:
        enable(sink=None, run_id=saved[3] or new_run_id())
        yield OBS.registry
    finally:
        OBS._restore_state(saved)
