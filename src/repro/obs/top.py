"""``repro-mc top``: a live terminal dashboard for daemons and sweeps.

Two data sources, one renderer loop:

* **Daemon mode** — the target is a URL.  Each refresh polls
  ``GET /metrics/history`` (the windowed JSON series served by
  :mod:`repro.serve`) plus ``GET /healthz``, and renders qps, windowed
  p50/p95 placement/admission latency, batch-size coalescing, HTTP
  status counts, backpressure 503s, queue depth, live-system size and
  Λ imbalance — with a qps sparkline over the retained window.
* **Sweep mode** — the target is an ``events.jsonl`` file (or a run
  directory containing one) written by any instrumented ``repro-mc``
  sweep.  The tailer reads incrementally (only new lines per refresh),
  folds the engine's ``run_plan``/``point_plan``/``shard``/``point``
  events into shard progress, cache hit rate, shard-latency stats,
  throughput and an ETA for the remaining work.

``--once`` renders a single frame without terminal control codes — the
scriptable/CI form; the interactive loop repaints with a plain ANSI
clear.  Everything here is stdlib-only (``urllib`` for polling) and
read-only: ``top`` never mutates the daemon or the sweep it watches.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from urllib.error import URLError
from urllib.request import urlopen

from repro.types import ReproError

__all__ = ["DaemonSource", "SweepSource", "make_source", "run_top"]

_SPARK = "▁▂▃▄▅▆▇█"


def fetch_json(url: str, timeout: float = 2.0) -> dict:
    """GET ``url`` and parse the JSON body; clean ReproError on failure."""
    try:
        with urlopen(url, timeout=timeout) as response:  # noqa: S310 - http only
            return json.loads(response.read().decode("utf-8"))
    except (URLError, OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot poll {url}: {exc}") from exc


def _fmt_seconds(value: float | None) -> str:
    """Human latency: 830ns / 1.2us / 3.4ms / 2.1s."""
    if value is None or value != value:
        return "-"
    if value < 1e-6:
        return f"{value * 1e9:.0f}ns"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _fmt_eta(seconds: float | None) -> str:
    if seconds is None or seconds != seconds or seconds < 0:
        return "-"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def sparkline(values: list[float], width: int = 30) -> str:
    """A block-character sparkline of the last ``width`` values."""
    tail = [max(v, 0.0) for v in values[-width:]]
    if not tail:
        return ""
    peak = max(tail)
    if peak <= 0:
        return _SPARK[0] * len(tail)
    return "".join(
        _SPARK[min(int(v / peak * (len(_SPARK) - 1) + 0.5), len(_SPARK) - 1)]
        for v in tail
    )


class DaemonSource:
    """Polls a serve daemon's windowed telemetry endpoints."""

    def __init__(self, url: str, timeout: float = 2.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    def frame(self) -> str:
        history = fetch_json(f"{self.url}/metrics/history", self.timeout)
        health = fetch_json(f"{self.url}/healthz", self.timeout)
        counters = history.get("counters", {})
        hists = history.get("histograms", {})
        gauges = history.get("gauges", {})

        def counter_total(name: str) -> float:
            return float(sum(counters.get(name, {}).get("values", [])))

        def window(name: str) -> dict:
            return hists.get(name, {}).get("window", {})

        qps = counters.get("serve.requests", {}).get("rate", 0.0)
        spark = sparkline(counters.get("serve.requests", {}).get("values", []))
        place = window("serve.place.seconds")
        admit = window("serve.admit.seconds")
        batch = window("serve.batch_size")
        statuses = sorted(
            name.rsplit(".", 1)[1]
            for name in counters
            if name.startswith("serve.http.")
        )
        status_line = (
            "  ".join(
                f"{s}:{counter_total(f'serve.http.{s}'):.0f}" for s in statuses
            )
            or "(no requests yet)"
        )
        rejected = counter_total("serve.rejected_503")
        lines = [
            f"repro-mc top — {self.url}  "
            f"(up {history.get('uptime_seconds', 0.0):.0f}s, "
            f"seq {health.get('seq', '?')}, "
            f"probe {health.get('probe_impl', '?')})",
            "",
            f"  qps (10s)       {qps:8.1f}   {spark}",
            f"  http            {status_line}",
            f"  place p50/p95   {_fmt_seconds(place.get('p50')):>8} / "
            f"{_fmt_seconds(place.get('p95'))}   "
            f"({place.get('count', 0)} in window)",
            f"  admit p50/p95   {_fmt_seconds(admit.get('p50')):>8} / "
            f"{_fmt_seconds(admit.get('p95'))}   "
            f"({admit.get('count', 0)} in window)",
            f"  batch size p50  {batch.get('p50') or 0:8.1f}   "
            f"(max {batch.get('max') or 0:.0f})",
            f"  rejected 503    {rejected:8.0f}",
            f"  queue depth     {gauges.get('serve.queue_depth', 0.0):8.0f}   "
            f"tasks {gauges.get('serve.tasks', 0.0):.0f}   "
            f"Λ {gauges.get('serve.lambda', 0.0):.3f}",
            f"  headroom α      {gauges.get('serve.headroom', 0.0):8.2f}   "
            f"(max admissible demand scale)",
        ]
        return "\n".join(lines)


class SweepSource:
    """Tails a sweep's ``events.jsonl``, folding engine progress events.

    Reads are incremental: each :meth:`frame` consumes only the lines
    appended since the last one, so watching an hour-scale sweep costs
    O(new events) per refresh, not O(file).
    """

    def __init__(self, path: str | Path):
        path = Path(path)
        if path.is_dir():
            path = path / "events.jsonl"
        if not path.exists():
            raise ReproError(f"no events file at {path}")
        self.path = path
        self._offset = 0
        # Folded progress state.
        self.run_id = ""
        self.figure = ""
        self.points_total: int | None = None
        self.points_planned = 0
        self.shards_planned = 0
        self.shards_done = 0
        self.cache_hits = 0
        self.jobs = 1
        self.compute_seconds = 0.0
        self.computed = 0
        self.first_ts: float | None = None
        self.last_ts: float | None = None

    def _ingest(self) -> None:
        with self.path.open("r", encoding="utf-8") as fh:
            fh.seek(self._offset)
            for line in fh:
                if not line.endswith("\n"):
                    break  # half-written tail; re-read next refresh
                self._offset += len(line.encode("utf-8"))
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                self._fold(event)

    def _fold(self, event: dict) -> None:
        name = event.get("event", "")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if self.first_ts is None:
                self.first_ts = float(ts)
            self.last_ts = float(ts)
        self.run_id = event.get("run_id", self.run_id)
        if name == "engine.run_plan":
            self.figure = event.get("figure", self.figure)
            self.points_total = event.get("points", self.points_total)
        elif name == "engine.point_plan":
            self.points_planned += 1
            self.shards_planned += int(event.get("shards", 0))
            self.jobs = int(event.get("jobs", self.jobs)) or 1
        elif name == "engine.shard":
            self.shards_done += 1
            if event.get("cached"):
                self.cache_hits += 1
            else:
                self.computed += 1
                self.compute_seconds += float(event.get("seconds", 0.0))
        elif name == "cli.figure_start" and not self.figure:
            self.figure = event.get("figure", "")

    def _eta(self) -> float | None:
        """Remaining shards over the observed completion rate."""
        remaining = self.shards_planned - self.shards_done
        # Scale the plan up for points the engine has not opened yet.
        if self.points_total and 0 < self.points_planned < self.points_total:
            per_point = self.shards_planned / self.points_planned
            remaining += int(per_point * (self.points_total - self.points_planned))
        if remaining <= 0:
            return 0.0
        if (
            self.shards_done == 0
            or self.first_ts is None
            or self.last_ts is None
            or self.last_ts <= self.first_ts
        ):
            return None
        rate = self.shards_done / (self.last_ts - self.first_ts)
        return remaining / rate if rate > 0 else None

    def frame(self) -> str:
        self._ingest()
        label = self.figure or self.path.name
        hit_rate = self.cache_hits / self.shards_done if self.shards_done else 0.0
        mean_shard = (
            self.compute_seconds / self.computed if self.computed else None
        )
        elapsed = (
            (self.last_ts - self.first_ts)
            if self.first_ts is not None and self.last_ts is not None
            else 0.0
        )
        throughput = self.shards_done / elapsed if elapsed > 0 else 0.0
        points = (
            f"{self.points_planned}/{self.points_total}"
            if self.points_total
            else f"{self.points_planned}"
        )
        lines = [
            f"repro-mc top — sweep {label}  (run {self.run_id or '?'})",
            "",
            f"  points          {points}",
            f"  shards          {self.shards_done}/{self.shards_planned} done   "
            f"cache hit rate {hit_rate:.0%}",
            f"  shard mean      {_fmt_seconds(mean_shard):>8}   "
            f"throughput {throughput:.2f} shards/s   jobs {self.jobs}",
            f"  elapsed         {_fmt_eta(elapsed):>8}   ETA {_fmt_eta(self._eta())}",
        ]
        return "\n".join(lines)


def make_source(target: str):
    """URL → :class:`DaemonSource`; path → :class:`SweepSource`."""
    if target.startswith(("http://", "https://")):
        return DaemonSource(target)
    return SweepSource(target)


def run_top(
    target: str,
    *,
    interval: float = 2.0,
    once: bool = False,
    stream=None,
    max_frames: int | None = None,
) -> int:
    """The ``repro-mc top`` loop; returns a process exit code.

    ``once`` renders a single frame with no terminal control codes and
    exits — the form scripts and CI use.  The interactive loop repaints
    every ``interval`` seconds until interrupted (Ctrl-C exits 0).
    ``max_frames`` bounds the loop for tests.
    """
    import sys

    stream = stream if stream is not None else sys.stdout
    source = make_source(target)
    frames = 0
    while True:
        frame = source.frame()
        if once:
            stream.write(frame + "\n")
        else:
            stream.write("\x1b[2J\x1b[H" + frame + "\n")
        stream.flush()
        frames += 1
        if once or (max_frames is not None and frames >= max_frames):
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0
