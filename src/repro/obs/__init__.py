"""repro.obs — lightweight instrumentation for the whole stack.

A process-local registry of counters and bounded summaries, a JSON-lines
structured event sink carrying a per-run ``run_id``, ``span()`` timing
context managers, and run manifests with full provenance.  The default
state is **off** with near-zero overhead: instrumented call sites guard
on ``OBS.enabled`` (one attribute load + branch), which the
``benchmarks/test_bench_probe_overhead.py`` gate pins at < 2 % of the
Theorem-1 probe hot path.

Typical use::

    from repro import obs

    with obs.instrument(log_path="events.jsonl") as state:
        artifact = run_sweep(figure1_nsu(), sets=500, store=store)
        print(state.registry.snapshot()["counters"])

Metric names and the event/manifest schemas are documented in
docs/API.md ("Observability").
"""

from repro.obs.events import ENVELOPE_KEYS, EventSink, JsonlSink
from repro.obs.manifest import (
    MANIFEST_VERSION,
    build_manifest,
    format_manifest,
    git_describe,
    load_manifest,
    manifest_path_for,
    write_manifest,
)
from repro.obs.live import (
    LiveMetrics,
    MetricsView,
    SloMonitor,
    SloResult,
    SloRule,
    parse_slo,
    render_prometheus,
)
from repro.obs.metrics import HIST_EDGES, Counter, Histogram, MetricsRegistry, Summary
from repro.obs.runtime import (
    MAX_SPAN_RECORDS,
    OBS,
    SPAN_RESERVED_KEYS,
    add_span_time,
    adopt_spans,
    collect,
    counter,
    current_span_id,
    disable,
    drain_spans,
    emit,
    enable,
    histogram,
    instrument,
    new_run_id,
    record_span,
    scheme_tag,
    span,
    summary,
)
from repro.obs.trace import (
    SpanNode,
    TraceTree,
    build_tree,
    critical_path,
    format_report,
    load_tree,
    to_chrome,
    to_folded,
)

__all__ = [
    "ENVELOPE_KEYS",
    "MAX_SPAN_RECORDS",
    "OBS",
    "SPAN_RESERVED_KEYS",
    "Counter",
    "EventSink",
    "HIST_EDGES",
    "Histogram",
    "JsonlSink",
    "LiveMetrics",
    "MANIFEST_VERSION",
    "MetricsRegistry",
    "MetricsView",
    "SloMonitor",
    "SloResult",
    "SloRule",
    "SpanNode",
    "Summary",
    "TraceTree",
    "add_span_time",
    "adopt_spans",
    "build_manifest",
    "build_tree",
    "collect",
    "counter",
    "critical_path",
    "current_span_id",
    "disable",
    "drain_spans",
    "emit",
    "enable",
    "format_manifest",
    "format_report",
    "git_describe",
    "histogram",
    "instrument",
    "load_manifest",
    "load_tree",
    "manifest_path_for",
    "new_run_id",
    "parse_slo",
    "record_span",
    "render_prometheus",
    "scheme_tag",
    "span",
    "summary",
    "to_chrome",
    "to_folded",
    "write_manifest",
]
