"""Process-local metric primitives: counters and bounded summaries.

Everything here is deliberately boring: plain Python objects with
``__slots__``, no locks (the library is single-threaded per process;
cross-process aggregation goes through :meth:`MetricsRegistry.dump` /
:meth:`MetricsRegistry.merge`), and no I/O.  The cost model is the whole
point — when instrumentation is disabled no object in this module is
even touched (call sites guard on :data:`repro.obs.OBS` ``.enabled``),
and when it is enabled a counter increment is one attribute add.

:class:`Summary` is the bounded replacement for the old unbounded
``EngineRunStats.shard_seconds`` list: exact ``count/total/min/max``
plus approximate ``p50``/``p95`` from a decimating reservoir.  The
reservoir keeps every ``stride``-th observation; when it fills, every
other retained sample is dropped and the stride doubles, so memory stays
at ``<= max_samples`` floats forever while the retained samples remain
spread over the whole stream.  The policy is deterministic: two
identical observation streams produce identical summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Counter", "Summary", "MetricsRegistry"]

#: Reservoir capacity of a :class:`Summary` (floats kept per summary).
DEFAULT_MAX_SAMPLES = 512


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = int(value)

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name}={self.value}>"


class Summary:
    """Bounded streaming summary of a float-valued observation stream.

    Exact: ``count``, ``total``, ``min``, ``max``.  Approximate (from
    the decimating reservoir): :meth:`percentile`.  Memory is bounded by
    ``max_samples`` regardless of stream length.
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "min",
        "max",
        "max_samples",
        "_samples",
        "_stride",
        "_pending",
    )

    def __init__(self, name: str = "", max_samples: int = DEFAULT_MAX_SAMPLES):
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._stride = 1  #: keep every _stride-th observation
        self._pending = 0  #: observations since the last kept sample

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self._samples.append(value)
            if len(self._samples) >= self.max_samples:
                self._decimate()

    def _decimate(self) -> None:
        """Halve the reservoir and double the stride (bounded memory)."""
        self._samples = self._samples[::2]
        self._stride *= 2

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (``0 <= q <= 100``); ``nan`` if empty.

        Nearest-rank over the sorted reservoir — exact while the stream
        still fits in the reservoir, approximate after decimation.
        """
        if not self._samples:
            return float("nan")
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def as_dict(self) -> dict:
        """The bounded reporting form: count/total/min/max/p50/p95."""
        if self.count == 0:
            return {
                "count": 0,
                "total": 0.0,
                "min": None,
                "max": None,
                "p50": None,
                "p95": None,
            }
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
        }

    def state(self) -> dict:
        """Full transferable state (used for cross-process merging)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self._samples),
            "stride": self._stride,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another summary's :meth:`state` into this one.

        Exact fields combine exactly; reservoirs concatenate at the
        coarser stride and re-decimate to stay bounded.
        """
        if not state["count"]:
            return
        self.count += int(state["count"])
        self.total += float(state["total"])
        self.min = min(self.min, float(state["min"]))
        self.max = max(self.max, float(state["max"]))
        self._stride = max(self._stride, int(state["stride"]))
        self._samples.extend(float(v) for v in state["samples"])
        while len(self._samples) >= self.max_samples:
            self._decimate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Summary {self.name} n={self.count} total={self.total:.6g}>"


@dataclass
class MetricsRegistry:
    """A named bag of counters and summaries.

    ``counter(name)`` / ``summary(name)`` create on first use, so call
    sites never need registration boilerplate.  :meth:`snapshot` is the
    human/JSON reporting form; :meth:`dump` + :meth:`merge` is the exact
    transfer form the engine uses to pull worker-process metrics back
    into the parent registry.
    """

    counters: dict[str, Counter] = field(default_factory=dict)
    summaries: dict[str, Summary] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def summary(self, name: str) -> Summary:
        s = self.summaries.get(name)
        if s is None:
            s = self.summaries[name] = Summary(name)
        return s

    def snapshot(self) -> dict:
        """Reporting form: ``{"counters": {...}, "summaries": {...}}``.

        Counters map to ints, summaries to their bounded
        ``count/total/min/max/p50/p95`` dicts; keys are sorted so the
        output is stable for diffing and tests.
        """
        return {
            "counters": {
                name: self.counters[name].value for name in sorted(self.counters)
            },
            "summaries": {
                name: self.summaries[name].as_dict()
                for name in sorted(self.summaries)
            },
        }

    def dump(self) -> dict:
        """Transfer form: exact counter values + full summary states."""
        return {
            "counters": {name: c.value for name, c in self.counters.items()},
            "summaries": {name: s.state() for name, s in self.summaries.items()},
        }

    def merge(self, dump: dict) -> None:
        """Fold a :meth:`dump` (e.g. from a worker process) into this registry.

        Counters and summaries are *independent namespaces*: a name that
        arrives as a counter in one dump and as a summary in another
        coexists as both (``snapshot()["counters"][name]`` and
        ``snapshot()["summaries"][name]``) — merging never converts one
        kind into the other and never raises on a kind collision.
        """
        for name, value in dump.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, state in dump.get("summaries", {}).items():
            self.summary(name).merge_state(state)

    def clear(self) -> None:
        self.counters.clear()
        self.summaries.clear()
