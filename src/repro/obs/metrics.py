"""Process-local metric primitives: counters and bounded summaries.

Everything here is deliberately boring: plain Python objects with
``__slots__``, no locks (the library is single-threaded per process;
cross-process aggregation goes through :meth:`MetricsRegistry.dump` /
:meth:`MetricsRegistry.merge`), and no I/O.  The cost model is the whole
point — when instrumentation is disabled no object in this module is
even touched (call sites guard on :data:`repro.obs.OBS` ``.enabled``),
and when it is enabled a counter increment is one attribute add.

:class:`Summary` is the bounded replacement for the old unbounded
``EngineRunStats.shard_seconds`` list: exact ``count/total/min/max``
plus approximate ``p50``/``p95`` from a decimating reservoir.  The
reservoir keeps every ``stride``-th observation; when it fills, every
other retained sample is dropped and the stride doubles, so memory stays
at ``<= max_samples`` floats forever while the retained samples remain
spread over the whole stream.  The policy is deterministic: two
identical observation streams produce identical summaries.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = ["Counter", "Summary", "Histogram", "MetricsRegistry", "HIST_EDGES"]

#: Reservoir capacity of a :class:`Summary` (floats kept per summary).
DEFAULT_MAX_SAMPLES = 512

#: Log-spaced bucket-edge schema of every :class:`Histogram`:
#: ``10**(k / PER_DECADE)`` for ``k`` in ``[MIN_EXP*PER_DECADE,
#: MAX_EXP*PER_DECADE]``.  Edges are *fixed and global*, which is the
#: whole design: two histograms — from different processes, different
#: runs, or different time-window buckets — merge by element-wise
#: integer addition of their bucket counts, exactly and associatively.
_HIST_MIN_EXP = -7  #: 100 ns resolution floor (seconds-denominated)
_HIST_MAX_EXP = 3  #: 1000 s ceiling before the overflow bucket
_HIST_PER_DECADE = 4  #: ~1.78x bucket width (10**0.25)

HIST_EDGES: tuple[float, ...] = tuple(
    10.0 ** (k / _HIST_PER_DECADE)
    for k in range(_HIST_MIN_EXP * _HIST_PER_DECADE, _HIST_MAX_EXP * _HIST_PER_DECADE + 1)
)

#: Schema tag stored with every transferable histogram state; merging
#: states with a different tag raises instead of silently mixing edges.
HIST_SCHEMA = f"log10[{_HIST_MIN_EXP}:{_HIST_MAX_EXP}:{_HIST_PER_DECADE}]"


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = int(value)

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name}={self.value}>"


class Summary:
    """Bounded streaming summary of a float-valued observation stream.

    Exact: ``count``, ``total``, ``min``, ``max``.  Approximate (from
    the decimating reservoir): :meth:`percentile`.  Memory is bounded by
    ``max_samples`` regardless of stream length.
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "min",
        "max",
        "max_samples",
        "_samples",
        "_stride",
        "_pending",
    )

    def __init__(self, name: str = "", max_samples: int = DEFAULT_MAX_SAMPLES):
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._stride = 1  #: keep every _stride-th observation
        self._pending = 0  #: observations since the last kept sample

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self._samples.append(value)
            if len(self._samples) >= self.max_samples:
                self._decimate()

    def _decimate(self) -> None:
        """Halve the reservoir and double the stride (bounded memory)."""
        self._samples = self._samples[::2]
        self._stride *= 2

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (``0 <= q <= 100``); ``nan`` if empty.

        Nearest-rank over the sorted reservoir — exact while the stream
        still fits in the reservoir, approximate after decimation.
        """
        if not self._samples:
            return float("nan")
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def as_dict(self) -> dict:
        """The bounded reporting form: count/total/min/max/p50/p95."""
        if self.count == 0:
            return {
                "count": 0,
                "total": 0.0,
                "min": None,
                "max": None,
                "p50": None,
                "p95": None,
            }
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
        }

    def state(self) -> dict:
        """Full transferable state (used for cross-process merging)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self._samples),
            "stride": self._stride,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another summary's :meth:`state` into this one.

        Exact fields combine exactly; reservoirs concatenate at the
        coarser stride and re-decimate to stay bounded.
        """
        if not state["count"]:
            return
        self.count += int(state["count"])
        self.total += float(state["total"])
        self.min = min(self.min, float(state["min"]))
        self.max = max(self.max, float(state["max"]))
        self._stride = max(self._stride, int(state["stride"]))
        self._samples.extend(float(v) for v in state["samples"])
        while len(self._samples) >= self.max_samples:
            self._decimate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Summary {self.name} n={self.count} total={self.total:.6g}>"


class Histogram:
    """Latency histogram over the fixed log-spaced :data:`HIST_EDGES`.

    The complement of :class:`Summary`: a ``Summary`` keeps a bounded
    *reservoir* (approximate percentiles that decay as the stream grows,
    merges that depend on merge order), a ``Histogram`` keeps *bucket
    counts* over globally fixed edges — percentiles quantized to bucket
    resolution (~1.78x) but **merges are exact and associative**: any
    grouping of the same observations into processes, shards, or time
    windows produces identical bucket counts (pinned by a hypothesis
    property in the engine test suite).

    ``counts[i]`` tallies observations ``v`` with
    ``HIST_EDGES[i-1] < v <= HIST_EDGES[i]``; ``counts[0]`` is the
    underflow bucket (``v <= HIST_EDGES[0]``, including zeros and
    negatives) and ``counts[-1]`` the overflow bucket
    (``v > HIST_EDGES[-1]``).  ``count``/``min``/``max`` are exact and
    merge exactly; ``total`` is an exact per-process sum whose merge is
    float addition (associative only to rounding), so it is excluded
    from :meth:`digest`.
    """

    __slots__ = ("name", "counts", "count", "total", "min", "max")

    def __init__(self, name: str = ""):
        self.name = name
        self.counts = [0] * (len(HIST_EDGES) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.counts[bisect_left(HIST_EDGES, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """``q``-th percentile (``0 <= q <= 100``); ``nan`` if empty.

        Reported as the upper edge of the bucket holding the
        nearest-rank observation, clamped to the exact observed
        ``[min, max]`` — deterministic and identical however the
        underlying observations were merged.
        """
        if not self.count:
            return float("nan")
        rank = max(1, -(-self.count * min(max(q, 0.0), 100.0) // 100))
        running = 0
        for i, n in enumerate(self.counts):
            running += n
            if running >= rank:
                if i >= len(HIST_EDGES):  # overflow bucket: no upper edge
                    return self.max
                return min(max(HIST_EDGES[i], self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    def as_dict(self) -> dict:
        """Bounded reporting form: count/total/min/max/p50/p95/p99/overflow.

        ``overflow`` is the count of observations past the last bucket
        edge — manifest rendering surfaces it so a saturated histogram
        is visible at a glance.
        """
        if self.count == 0:
            return {
                "count": 0,
                "total": 0.0,
                "min": None,
                "max": None,
                "p50": None,
                "p95": None,
                "p99": None,
                "overflow": 0,
            }
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "overflow": int(self.counts[-1]),
        }

    def digest(self) -> dict:
        """The exactly-merge-invariant identity of this histogram.

        Contains only fields whose merge is exact integer/min/max
        arithmetic — ``jobs=1`` and ``jobs=N`` runs over the same
        observations produce equal digests.  ``total`` (float addition)
        is deliberately excluded.
        """
        return {
            "schema": HIST_SCHEMA,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "counts": {i: n for i, n in enumerate(self.counts) if n},
        }

    def state(self) -> dict:
        """Full transferable state (sparse counts; cross-process merging)."""
        return {
            "schema": HIST_SCHEMA,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "counts": {str(i): n for i, n in enumerate(self.counts) if n},
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` in (exact bucket adds)."""
        schema = state.get("schema")
        if schema != HIST_SCHEMA:
            raise ValueError(
                f"histogram schema mismatch: {schema!r} != {HIST_SCHEMA!r}"
            )
        if not state["count"]:
            return
        self.count += int(state["count"])
        self.total += float(state["total"])
        self.min = min(self.min, float(state["min"]))
        self.max = max(self.max, float(state["max"]))
        for index, n in state["counts"].items():
            self.counts[int(index)] += int(n)

    def merge(self, other: "Histogram") -> None:
        """Fold another in-process :class:`Histogram` in (exact)."""
        if other.count:
            self.count += other.count
            self.total += other.total
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
            for i, n in enumerate(other.counts):
                if n:
                    self.counts[i] += n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Histogram {self.name} n={self.count}>"


@dataclass
class MetricsRegistry:
    """A named bag of counters and summaries.

    ``counter(name)`` / ``summary(name)`` create on first use, so call
    sites never need registration boilerplate.  :meth:`snapshot` is the
    human/JSON reporting form; :meth:`dump` + :meth:`merge` is the exact
    transfer form the engine uses to pull worker-process metrics back
    into the parent registry.
    """

    counters: dict[str, Counter] = field(default_factory=dict)
    summaries: dict[str, Summary] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def summary(self, name: str) -> Summary:
        s = self.summaries.get(name)
        if s is None:
            s = self.summaries[name] = Summary(name)
        return s

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def snapshot(self) -> dict:
        """Reporting form: ``{"counters", "summaries", "histograms"}``.

        Counters map to ints, summaries to their bounded
        ``count/total/min/max/p50/p95`` dicts, histograms to their
        ``count/total/min/max/p50/p95/p99`` digests; keys are sorted so
        the output is stable for diffing and tests.
        """
        return {
            "counters": {
                name: self.counters[name].value for name in sorted(self.counters)
            },
            "summaries": {
                name: self.summaries[name].as_dict()
                for name in sorted(self.summaries)
            },
            "histograms": {
                name: self.histograms[name].as_dict()
                for name in sorted(self.histograms)
            },
        }

    def dump(self) -> dict:
        """Transfer form: exact counter values + summary/histogram states."""
        return {
            "counters": {name: c.value for name, c in self.counters.items()},
            "summaries": {name: s.state() for name, s in self.summaries.items()},
            "histograms": {
                name: h.state() for name, h in self.histograms.items()
            },
        }

    def merge(self, dump: dict) -> None:
        """Fold a :meth:`dump` (e.g. from a worker process) into this registry.

        Counters and summaries are *independent namespaces*: a name that
        arrives as a counter in one dump and as a summary in another
        coexists as both (``snapshot()["counters"][name]`` and
        ``snapshot()["summaries"][name]``) — merging never converts one
        kind into the other and never raises on a kind collision.
        """
        for name, value in dump.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, state in dump.get("summaries", {}).items():
            self.summary(name).merge_state(state)
        for name, state in dump.get("histograms", {}).items():
            self.histogram(name).merge_state(state)

    def clear(self) -> None:
        self.counters.clear()
        self.summaries.clear()
        self.histograms.clear()
