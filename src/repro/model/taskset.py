"""Task sets with cached per-level utilization matrices.

The schedulability analysis (Eqs. (1)-(3) of the paper) needs, over and
over, sums of the form

.. math::

    U_j^{\\Psi}(k) = \\sum_{\\tau_i \\in \\Psi \\cap L_j} u_i(k)

for every pair of criticality levels ``(j, k)``.  :class:`MCTaskSet`
precomputes a dense ``(N, K)`` utilization matrix and the per-task
criticality vector once, so that any subset's ``(K, K)`` level matrix can
be obtained with a single vectorized reduction — this is the hot path of
every partitioning probe, hence the NumPy layout (see DESIGN.md §6).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.model.task import MCTask
from repro.types import ModelError

__all__ = ["MCTaskSet"]


class MCTaskSet:
    """An immutable ordered collection of :class:`MCTask`.

    Parameters
    ----------
    tasks:
        The tasks, in index order (task indices are 0-based everywhere in
        the code; the paper's :math:`\\tau_1 \\dots \\tau_N` map to indices
        ``0..N-1``).
    levels:
        The number of system criticality levels ``K``.  Defaults to the
        maximum task criticality.  May be larger (a system may define more
        levels than any present task uses) but never smaller.
    """

    __slots__ = ("_tasks", "_levels", "_umat", "_crit")

    def __init__(self, tasks: Iterable[MCTask], levels: int | None = None):
        self._tasks: tuple[MCTask, ...] = tuple(tasks)
        if not self._tasks:
            raise ModelError("task set must contain at least one task")
        max_crit = max(t.criticality for t in self._tasks)
        if levels is None:
            levels = max_crit
        if levels < max_crit:
            raise ModelError(
                f"system criticality K={levels} is below the maximum task"
                f" criticality {max_crit}"
            )
        if levels < 1:
            raise ModelError(f"K must be >= 1, got {levels}")
        self._levels = int(levels)
        n = len(self._tasks)
        umat = np.zeros((n, self._levels), dtype=np.float64)
        crit = np.empty(n, dtype=np.int64)
        for i, t in enumerate(self._tasks):
            crit[i] = t.criticality
            umat[i, : t.criticality] = t.utilization_vector(t.criticality)
        umat.setflags(write=False)
        crit.setflags(write=False)
        self._umat = umat
        self._crit = crit

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[MCTask]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> MCTask:
        return self._tasks[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MCTaskSet):
            return NotImplemented
        return self._levels == other._levels and self._tasks == other._tasks

    def __hash__(self) -> int:
        return hash((self._levels, self._tasks))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MCTaskSet(n={len(self)}, K={self._levels})"

    # ------------------------------------------------------------------
    # Model-level accessors
    # ------------------------------------------------------------------
    @property
    def tasks(self) -> tuple[MCTask, ...]:
        return self._tasks

    @property
    def levels(self) -> int:
        """The number of system criticality levels ``K``."""
        return self._levels

    @property
    def utilization_matrix(self) -> np.ndarray:
        """Read-only ``(N, K)`` array with ``u[i, k-1] = u_i(k)`` (0 above l_i)."""
        return self._umat

    @property
    def criticalities(self) -> np.ndarray:
        """Read-only ``(N,)`` int array of task criticality levels ``l_i``."""
        return self._crit

    # ------------------------------------------------------------------
    # Utilization algebra (Eqs. (1)-(3) of the paper)
    # ------------------------------------------------------------------
    def level_matrix(self, indices: Sequence[int] | None = None) -> np.ndarray:
        """The ``(K, K)`` matrix ``L[j-1, k-1] = U_j(k)`` for a subset.

        ``U_j(k)`` (Eq. (1)) is the summed level-``k`` utilization of the
        subset's tasks whose own criticality is exactly ``j``.  Entries
        with ``k > j`` are zero by construction (a task contributes no
        utilization above its own criticality).

        Parameters
        ----------
        indices:
            Task indices forming the subset; ``None`` means all tasks.
        """
        if indices is None:
            umat, crit = self._umat, self._crit
        else:
            idx = np.asarray(indices, dtype=np.intp)
            umat, crit = self._umat[idx], self._crit[idx]
        out = np.zeros((self._levels, self._levels), dtype=np.float64)
        # Sum rows of the utilization matrix into their criticality bucket.
        np.add.at(out, crit - 1, umat)
        return out

    def total_utilization(self, level: int) -> float:
        """``U(k)`` (Eq. (2)): total level-``k`` utilization of tasks with
        criticality ``k`` or higher, over the whole set."""
        if not 1 <= level <= self._levels:
            raise ModelError(f"level must be in [1, {self._levels}], got {level}")
        mask = self._crit >= level
        return float(self._umat[mask, level - 1].sum())

    def total_utilization_vector(self) -> np.ndarray:
        """``(K,)`` vector of ``U(k)`` for ``k = 1..K``."""
        out = np.empty(self._levels, dtype=np.float64)
        for k in range(1, self._levels + 1):
            out[k - 1] = self.total_utilization(k)
        return out

    def average_utilization(self, level: int = 1) -> float:
        """Aggregate raw utilization at ``level`` (used by NSU normalization)."""
        if not 1 <= level <= self._levels:
            raise ModelError(f"level must be in [1, {self._levels}], got {level}")
        return float(self._umat[:, level - 1].sum())

    # ------------------------------------------------------------------
    # Derived sets
    # ------------------------------------------------------------------
    def subset(self, indices: Sequence[int]) -> "MCTaskSet":
        """A new task set containing only ``indices`` (same ``K``)."""
        idx = list(indices)
        if not idx:
            raise ModelError("subset must be non-empty")
        return MCTaskSet((self._tasks[i] for i in idx), levels=self._levels)

    def with_levels(self, levels: int) -> "MCTaskSet":
        """The same tasks viewed under a different system level count ``K``."""
        return MCTaskSet(self._tasks, levels=levels)

    def hyperperiod(self) -> float | None:
        """LCM of the periods, or ``None`` when any period is non-integer.

        The paper's generator draws integer periods, so exact-hyperperiod
        simulation horizons are available for its workloads; arbitrary
        float periods have no meaningful LCM and return ``None``.
        """
        import math

        ints = []
        for t in self._tasks:
            if t.period != int(t.period):
                return None
            ints.append(int(t.period))
        return float(math.lcm(*ints))
