"""The Vestal mixed-criticality task model.

A mixed-criticality (MC) task :math:`\\tau_i = (C_i, p_i, l_i)` is an
implicit-deadline periodic task with

* a *criticality level* :math:`l_i \\in \\{1, \\dots, K\\}` (its own
  criticality; level 1 is the lowest),
* a *period* :math:`p_i` that doubles as its relative deadline, and
* a vector of worst-case execution times (WCETs)
  :math:`C_i = \\langle c_i(1), \\dots, c_i(l_i)\\rangle` with
  :math:`c_i(1) \\le c_i(2) \\le \\dots \\le c_i(l_i)`.

The *level-k utilization* of the task is :math:`u_i(k) = c_i(k) / p_i`
for :math:`k \\le l_i`; at levels above its own criticality a task is
dropped, and by convention this module reports utilization 0 there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.types import ModelError

__all__ = ["MCTask"]


@dataclass(frozen=True)
class MCTask:
    """One implicit-deadline periodic mixed-criticality task.

    Parameters
    ----------
    wcets:
        WCET vector ``(c(1), ..., c(l))``; its length defines the task's
        criticality level ``l``.  Must be positive and non-decreasing.
    period:
        Period and relative deadline ``p > 0``.
    name:
        Optional human-readable label (e.g. ``"tau_3"``); purely cosmetic.

    Examples
    --------
    >>> t = MCTask(wcets=(2.0, 5.0), period=10.0)
    >>> t.criticality
    2
    >>> t.utilization(1), t.utilization(2)
    (0.2, 0.5)
    >>> t.utilization(3)          # above own criticality: dropped
    0.0
    """

    wcets: tuple[float, ...]
    period: float
    name: str = ""
    _utils: tuple[float, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        wcets = tuple(float(c) for c in self.wcets)
        object.__setattr__(self, "wcets", wcets)
        object.__setattr__(self, "period", float(self.period))
        self._validate()
        object.__setattr__(
            self, "_utils", tuple(c / self.period for c in wcets)
        )

    def _validate(self) -> None:
        if not self.wcets:
            raise ModelError("WCET vector must not be empty")
        if not math.isfinite(self.period) or self.period <= 0:
            raise ModelError(f"period must be positive and finite, got {self.period}")
        prev = 0.0
        for k, c in enumerate(self.wcets, start=1):
            if not math.isfinite(c) or c <= 0:
                raise ModelError(f"c({k}) must be positive and finite, got {c}")
            if c < prev:
                raise ModelError(
                    f"WCETs must be non-decreasing: c({k})={c} < c({k - 1})={prev}"
                )
            prev = c

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def criticality(self) -> int:
        """The task's own criticality level :math:`l_i` (= len of WCET vector)."""
        return len(self.wcets)

    def wcet(self, level: int) -> float:
        """WCET :math:`c_i(k)` at criticality level ``level`` (1-based).

        For ``level > l_i`` the task is not executed, and 0 is returned.
        """
        if level < 1:
            raise ModelError(f"criticality level must be >= 1, got {level}")
        if level > self.criticality:
            return 0.0
        return self.wcets[level - 1]

    def utilization(self, level: int) -> float:
        """Utilization :math:`u_i(k) = c_i(k)/p_i` (0 above own criticality)."""
        if level < 1:
            raise ModelError(f"criticality level must be >= 1, got {level}")
        if level > self.criticality:
            return 0.0
        return self._utils[level - 1]

    @property
    def max_utilization(self) -> float:
        """The task's maximum utilization :math:`u_i(l_i)`.

        This is the quantity classical heuristics (FFD/BFD/WFD) sort on.
        """
        return self._utils[-1]

    def utilization_vector(self, levels: int) -> tuple[float, ...]:
        """``(u(1), ..., u(levels))`` padded with zeros above ``l_i``."""
        if levels < self.criticality:
            raise ModelError(
                f"cannot truncate task of criticality {self.criticality} to"
                f" {levels} levels"
            )
        return self._utils + (0.0,) * (levels - self.criticality)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_utilizations(
        cls,
        utilizations: Sequence[float] | Iterable[float],
        period: float,
        name: str = "",
    ) -> "MCTask":
        """Build a task from per-level utilizations instead of WCETs."""
        utils = tuple(float(u) for u in utilizations)
        return cls(wcets=tuple(u * period for u in utils), period=period, name=name)

    def scaled(self, factor: float) -> "MCTask":
        """Return a copy with all WCETs scaled by ``factor`` (> 0)."""
        if not math.isfinite(factor) or factor <= 0:
            raise ModelError(f"scale factor must be positive, got {factor}")
        return MCTask(
            wcets=tuple(c * factor for c in self.wcets),
            period=self.period,
            name=self.name,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "task"
        cs = ", ".join(f"{c:g}" for c in self.wcets)
        return f"{label}(C=<{cs}>, p={self.period:g}, l={self.criticality})"
