"""Mixed-criticality task model: tasks, task sets, and partitions."""

from repro.model.task import MCTask
from repro.model.taskset import MCTaskSet
from repro.model.partition import Partition
from repro.model.io import (
    events_from_dict,
    events_to_dict,
    load_events,
    load_partition,
    load_taskset,
    partition_from_dict,
    partition_to_dict,
    save_events,
    save_partition,
    save_taskset,
    taskset_from_dict,
    taskset_to_dict,
)

__all__ = [
    "MCTask",
    "MCTaskSet",
    "Partition",
    "events_from_dict",
    "events_to_dict",
    "load_events",
    "load_partition",
    "load_taskset",
    "save_events",
    "partition_from_dict",
    "partition_to_dict",
    "save_partition",
    "save_taskset",
    "taskset_from_dict",
    "taskset_to_dict",
]
