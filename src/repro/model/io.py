"""JSON (de)serialization for task sets and partitions.

A stable on-disk format so workload corpora and partitioning decisions
can be shared between runs, tools and languages:

.. code-block:: json

    {
      "format": "repro-mc-taskset",
      "version": 1,
      "levels": 2,
      "tasks": [
        {"name": "flight_control", "period": 20.0, "wcets": [2.0, 5.0]},
        {"name": "telemetry", "period": 25.0, "wcets": [4.0]}
      ]
    }

Partitions serialize as the task set plus the core count and the
task->core assignment vector.

Injection-event files (``repro-mc-events``, schema v1) hold a list of
:class:`repro.sched.events.SimEvent` records for ``repro-mc simulate
--events``:

.. code-block:: json

    {
      "format": "repro-mc-events",
      "version": 1,
      "events": [
        {"kind": "wcet_burst", "start": 20.0, "end": 60.0, "factor": 2.5},
        {"kind": "task_arrival", "time": 30.0,
         "task": {"name": "new", "period": 15.0, "wcets": [1.0, 1.5]}},
        {"kind": "task_departure", "time": 100.0, "task_index": 3},
        {"kind": "core_failure", "time": 120.0, "core": 1},
        {"kind": "core_hotplug", "time": 200.0, "core": 1},
        {"kind": "mode_recovery", "start": 10.0, "end": 80.0}
      ]
    }

Instantaneous kinds may write ``"time"`` instead of the equal
``"start"``/``"end"`` pair.  Structural validation (kinds, durations,
payload types) happens in the :class:`~repro.sched.events.SimEvent`
constructor, so a malformed file fails at load, not mid-simulation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.model.partition import Partition
from repro.model.task import MCTask
from repro.model.taskset import MCTaskSet
from repro.types import ModelError

__all__ = [
    "taskset_to_dict",
    "taskset_from_dict",
    "save_taskset",
    "load_taskset",
    "partition_to_dict",
    "partition_from_dict",
    "save_partition",
    "load_partition",
    "events_to_dict",
    "events_from_dict",
    "save_events",
    "load_events",
]

_TASKSET_FORMAT = "repro-mc-taskset"
_PARTITION_FORMAT = "repro-mc-partition"
_EVENTS_FORMAT = "repro-mc-events"
_VERSION = 1


def taskset_to_dict(taskset: MCTaskSet) -> dict[str, Any]:
    """A JSON-ready dict describing ``taskset``."""
    return {
        "format": _TASKSET_FORMAT,
        "version": _VERSION,
        "levels": taskset.levels,
        "tasks": [
            {"name": t.name, "period": t.period, "wcets": list(t.wcets)}
            for t in taskset
        ],
    }


def taskset_from_dict(data: dict[str, Any]) -> MCTaskSet:
    """Inverse of :func:`taskset_to_dict` (validates format/version)."""
    if data.get("format") != _TASKSET_FORMAT:
        raise ModelError(
            f"not a {_TASKSET_FORMAT} document: format={data.get('format')!r}"
        )
    if data.get("version") != _VERSION:
        raise ModelError(f"unsupported version {data.get('version')!r}")
    try:
        tasks = [
            MCTask(
                wcets=tuple(entry["wcets"]),
                period=entry["period"],
                name=entry.get("name", ""),
            )
            for entry in data["tasks"]
        ]
        levels = data["levels"]
    except (KeyError, TypeError) as exc:
        raise ModelError(f"malformed task set document: {exc}") from exc
    return MCTaskSet(tasks, levels=levels)


def save_taskset(taskset: MCTaskSet, path: str | Path) -> None:
    Path(path).write_text(json.dumps(taskset_to_dict(taskset), indent=2) + "\n")


def load_taskset(path: str | Path) -> MCTaskSet:
    return taskset_from_dict(json.loads(Path(path).read_text()))


def partition_to_dict(partition: Partition) -> dict[str, Any]:
    """A JSON-ready dict describing ``partition`` (with its task set)."""
    return {
        "format": _PARTITION_FORMAT,
        "version": _VERSION,
        "cores": partition.cores,
        "assignment": partition.assignment.tolist(),
        "taskset": taskset_to_dict(partition.taskset),
    }


def partition_from_dict(data: dict[str, Any]) -> Partition:
    """Inverse of :func:`partition_to_dict`."""
    if data.get("format") != _PARTITION_FORMAT:
        raise ModelError(
            f"not a {_PARTITION_FORMAT} document: format={data.get('format')!r}"
        )
    if data.get("version") != _VERSION:
        raise ModelError(f"unsupported version {data.get('version')!r}")
    taskset = taskset_from_dict(data["taskset"])
    try:
        return Partition.from_assignment(
            taskset, int(data["cores"]), data["assignment"]
        )
    except (KeyError, TypeError) as exc:
        raise ModelError(f"malformed partition document: {exc}") from exc


def save_partition(partition: Partition, path: str | Path) -> None:
    Path(path).write_text(json.dumps(partition_to_dict(partition), indent=2) + "\n")


def load_partition(path: str | Path) -> Partition:
    return partition_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Injection events (repro.sched.events is imported lazily: the model
# layer must stay importable without pulling in the whole analysis /
# partitioning stack the event runtime builds on)
# ----------------------------------------------------------------------
def _event_to_entry(event) -> dict[str, Any]:
    entry: dict[str, Any] = {"kind": event.kind}
    if event.end == event.start:
        entry["time"] = event.start
    else:
        entry["start"] = event.start
        entry["end"] = event.end
    if event.factor is not None:
        entry["factor"] = event.factor
    if event.tasks is not None:
        entry["tasks"] = list(event.tasks)
    if event.task is not None:
        entry["task"] = {
            "name": event.task.name,
            "period": event.task.period,
            "wcets": list(event.task.wcets),
        }
    if event.task_index is not None:
        entry["task_index"] = event.task_index
    if event.core is not None:
        entry["core"] = event.core
    return entry


def events_to_dict(events) -> dict[str, Any]:
    """A JSON-ready dict describing a sequence of ``SimEvent`` records."""
    return {
        "format": _EVENTS_FORMAT,
        "version": _VERSION,
        "events": [_event_to_entry(e) for e in events],
    }


def events_from_dict(data: dict[str, Any]):
    """Inverse of :func:`events_to_dict` (validates format/version).

    Document-shape problems raise :class:`ModelError`; structurally
    invalid events raise the event constructor's
    :class:`~repro.types.SimulationError` with the offending field named.
    """
    from repro.sched.events import SimEvent

    if data.get("format") != _EVENTS_FORMAT:
        raise ModelError(
            f"not a {_EVENTS_FORMAT} document: format={data.get('format')!r}"
        )
    if data.get("version") != _VERSION:
        raise ModelError(f"unsupported version {data.get('version')!r}")
    entries = data.get("events")
    if not isinstance(entries, list):
        raise ModelError("malformed events document: 'events' must be a list")
    events = []
    for pos, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ModelError(f"malformed event #{pos}: not an object")
        try:
            kind = entry["kind"]
            if "time" in entry:
                start = end = float(entry["time"])
            else:
                start = float(entry["start"])
                end = float(entry.get("end", entry["start"]))
            task = entry.get("task")
            if task is not None:
                task = MCTask(
                    wcets=tuple(task["wcets"]),
                    period=task["period"],
                    name=task.get("name", ""),
                )
            events.append(
                SimEvent(
                    kind=kind,
                    start=start,
                    end=end,
                    factor=entry.get("factor"),
                    tasks=(
                        tuple(entry["tasks"])
                        if entry.get("tasks") is not None
                        else None
                    ),
                    task=task,
                    task_index=entry.get("task_index"),
                    core=entry.get("core"),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(f"malformed event #{pos}: {exc}") from exc
    return tuple(events)


def save_events(events, path: str | Path) -> None:
    Path(path).write_text(json.dumps(events_to_dict(events), indent=2) + "\n")


def load_events(path: str | Path):
    return events_from_dict(json.loads(Path(path).read_text()))
