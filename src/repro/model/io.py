"""JSON (de)serialization for task sets and partitions.

A stable on-disk format so workload corpora and partitioning decisions
can be shared between runs, tools and languages:

.. code-block:: json

    {
      "format": "repro-mc-taskset",
      "version": 1,
      "levels": 2,
      "tasks": [
        {"name": "flight_control", "period": 20.0, "wcets": [2.0, 5.0]},
        {"name": "telemetry", "period": 25.0, "wcets": [4.0]}
      ]
    }

Partitions serialize as the task set plus the core count and the
task->core assignment vector.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.model.partition import Partition
from repro.model.task import MCTask
from repro.model.taskset import MCTaskSet
from repro.types import ModelError

__all__ = [
    "taskset_to_dict",
    "taskset_from_dict",
    "save_taskset",
    "load_taskset",
    "partition_to_dict",
    "partition_from_dict",
    "save_partition",
    "load_partition",
]

_TASKSET_FORMAT = "repro-mc-taskset"
_PARTITION_FORMAT = "repro-mc-partition"
_VERSION = 1


def taskset_to_dict(taskset: MCTaskSet) -> dict[str, Any]:
    """A JSON-ready dict describing ``taskset``."""
    return {
        "format": _TASKSET_FORMAT,
        "version": _VERSION,
        "levels": taskset.levels,
        "tasks": [
            {"name": t.name, "period": t.period, "wcets": list(t.wcets)}
            for t in taskset
        ],
    }


def taskset_from_dict(data: dict[str, Any]) -> MCTaskSet:
    """Inverse of :func:`taskset_to_dict` (validates format/version)."""
    if data.get("format") != _TASKSET_FORMAT:
        raise ModelError(
            f"not a {_TASKSET_FORMAT} document: format={data.get('format')!r}"
        )
    if data.get("version") != _VERSION:
        raise ModelError(f"unsupported version {data.get('version')!r}")
    try:
        tasks = [
            MCTask(
                wcets=tuple(entry["wcets"]),
                period=entry["period"],
                name=entry.get("name", ""),
            )
            for entry in data["tasks"]
        ]
        levels = data["levels"]
    except (KeyError, TypeError) as exc:
        raise ModelError(f"malformed task set document: {exc}") from exc
    return MCTaskSet(tasks, levels=levels)


def save_taskset(taskset: MCTaskSet, path: str | Path) -> None:
    Path(path).write_text(json.dumps(taskset_to_dict(taskset), indent=2) + "\n")


def load_taskset(path: str | Path) -> MCTaskSet:
    return taskset_from_dict(json.loads(Path(path).read_text()))


def partition_to_dict(partition: Partition) -> dict[str, Any]:
    """A JSON-ready dict describing ``partition`` (with its task set)."""
    return {
        "format": _PARTITION_FORMAT,
        "version": _VERSION,
        "cores": partition.cores,
        "assignment": partition.assignment.tolist(),
        "taskset": taskset_to_dict(partition.taskset),
    }


def partition_from_dict(data: dict[str, Any]) -> Partition:
    """Inverse of :func:`partition_to_dict`."""
    if data.get("format") != _PARTITION_FORMAT:
        raise ModelError(
            f"not a {_PARTITION_FORMAT} document: format={data.get('format')!r}"
        )
    if data.get("version") != _VERSION:
        raise ModelError(f"unsupported version {data.get('version')!r}")
    taskset = taskset_from_dict(data["taskset"])
    try:
        return Partition.from_assignment(
            taskset, int(data["cores"]), data["assignment"]
        )
    except (KeyError, TypeError) as exc:
        raise ModelError(f"malformed partition document: {exc}") from exc


def save_partition(partition: Partition, path: str | Path) -> None:
    Path(path).write_text(json.dumps(partition_to_dict(partition), indent=2) + "\n")


def load_partition(path: str | Path) -> Partition:
    return partition_from_dict(json.loads(Path(path).read_text()))
