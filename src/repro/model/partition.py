"""Task-to-core partitions.

A partition :math:`\\Gamma = \\{\\Psi_1, \\dots, \\Psi_M\\}` assigns every
task of a task set to exactly one of ``M`` identical cores.  The class
below is a thin, mutable builder used by the partitioning heuristics; it
maintains, incrementally, the per-core ``(K, K)`` level-utilization
matrices ``U_j^{\\Psi_m}(k)`` (Eq. (3)) so that probing a task onto a core
never rescans the core's task list, and caches the per-core Eq.-(9)
utilizations so that unchanged cores are never re-evaluated.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.model.taskset import MCTaskSet
from repro.types import PartitionError

__all__ = ["Partition"]


class Partition:
    """Mutable assignment of the tasks of ``taskset`` onto ``cores`` cores.

    The builder enforces single-assignment: a task index may be assigned
    at most once (heuristics never move tasks).

    Examples
    --------
    >>> from repro.model import MCTask, MCTaskSet
    >>> ts = MCTaskSet([MCTask((1.0,), 10.0), MCTask((2.0, 4.0), 10.0)])
    >>> part = Partition(ts, cores=2)
    >>> part.assign(0, 0); part.assign(1, 1)
    >>> part.core_of(1)
    1
    >>> part.is_complete
    True
    """

    __slots__ = (
        "_taskset",
        "_cores",
        "_assignment",
        "_level_mats",
        "_counts",
        "_util_cache",
        "_core_seq",
        "probe_state",
        "_frozen",
    )

    def __init__(self, taskset: MCTaskSet, cores: int):
        if cores < 1:
            raise PartitionError(f"core count must be >= 1, got {cores}")
        self._taskset = taskset
        self._cores = int(cores)
        self._assignment = np.full(len(taskset), -1, dtype=np.int64)
        k = taskset.levels
        self._level_mats = np.zeros((self._cores, k, k), dtype=np.float64)
        # The base array stays read-only except inside assign(), so every
        # view handed out (and every alias of it) is genuinely immutable.
        self._level_mats.setflags(write=False)
        self._counts = np.zeros(self._cores, dtype=np.int64)
        # Per-rule caches of the Eq.-(9) core utilizations; nan = stale.
        self._util_cache: dict[str, np.ndarray] = {}
        # Monotonic per-core mutation counters: every assign/unassign
        # bumps the touched core, so any cache keyed by (core, version)
        # can detect staleness without subscribing to mutations.
        self._core_seq = np.zeros(self._cores, dtype=np.int64)
        #: Namespace for probe-backend caches (e.g. the incremental
        #: backend's per-core Theorem-1 state).  Values may implement
        #: ``carried(n_prefix)`` to survive :meth:`extended`.
        self.probe_state: dict[str, object] = {}
        self._frozen = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def taskset(self) -> MCTaskSet:
        return self._taskset

    @property
    def cores(self) -> int:
        return self._cores

    @property
    def is_frozen(self) -> bool:
        """True for immutable :meth:`snapshot` copies."""
        return self._frozen

    @property
    def is_complete(self) -> bool:
        """True when every task has been assigned to some core."""
        return bool((self._assignment >= 0).all())

    @property
    def assignment(self) -> np.ndarray:
        """Copy of the task->core index vector (-1 for unassigned)."""
        return self._assignment.copy()

    def core_of(self, task_index: int) -> int:
        """Core index of ``task_index``, or -1 if unassigned."""
        return int(self._assignment[task_index])

    def tasks_on(self, core: int) -> list[int]:
        """Sorted task indices currently assigned to ``core``."""
        self._check_core(core)
        return np.flatnonzero(self._assignment == core).tolist()

    def core_size(self, core: int) -> int:
        self._check_core(core)
        return int(self._counts[core])

    @property
    def core_counts(self) -> np.ndarray:
        """Copy of the per-core assigned-task counts."""
        return self._counts.copy()

    def level_matrix(self, core: int) -> np.ndarray:
        """The core's ``(K, K)`` matrix ``L[j-1, k-1] = U_j^{Psi_m}(k)`` (Eq. 3).

        Returned as a read-only view of a read-only base array: mutating
        it (or any alias of it) raises.
        """
        self._check_core(core)
        return self._level_mats[core]

    def level_matrices(self) -> np.ndarray:
        """All per-core level matrices as one read-only ``(M, K, K)`` view.

        This is the zero-copy input for the batch probe engine
        (:mod:`repro.analysis.batch`).
        """
        return self._level_mats[:]

    def candidate_stack(self, task_index: int) -> np.ndarray:
        """Writable ``(M, K, K)`` copy with ``task_index`` added to every core.

        Stack entry ``m`` is the hypothetical level matrix
        ``U^{Psi_m + tau_i}`` of the Eq.-(15) probes, built with a single
        broadcasted add.  This is the probe hot path, so it reads the
        slots directly instead of going through the read-only views.
        """
        taskset = self._taskset
        crit = int(taskset.criticalities[task_index])
        mats = self._level_mats.copy()
        mats[:, crit - 1, :crit] += taskset.utilization_matrix[task_index, :crit]
        return mats

    def core_versions(self) -> np.ndarray:
        """Read-only view of the per-core mutation counters: ``(M,)`` int64.

        Each :meth:`assign`/:meth:`unassign` bumps exactly the mutated
        core.  Probe backends snapshot this vector next to cached
        per-core results; an entry whose stored version differs from the
        current one is stale and must be recomputed.
        """
        view = self._core_seq[:]
        view.setflags(write=False)
        return view

    def candidate_stack_for_cores(
        self, task_index: int, cores: Sequence[int]
    ) -> np.ndarray:
        """Candidate matrices of ``task_index`` on a *subset* of cores.

        ``(C, K, K)`` writable stack, entry ``c`` being the hypothetical
        ``U^{Psi_{cores[c]} + tau_i}``.  Bit-identical to the matching
        rows of :meth:`candidate_stack`; the incremental probe backend
        uses it to recompute only the cores whose version moved.
        """
        sel = np.asarray(cores, dtype=np.int64)
        taskset = self._taskset
        crit = int(taskset.criticalities[task_index])
        mats = self._level_mats[sel]  # advanced indexing: a fresh copy
        mats[:, crit - 1, :crit] += taskset.utilization_matrix[task_index, :crit]
        return mats

    def candidate_pairs_stack(
        self, task_indices: Sequence[int], core_indices: Sequence[int]
    ) -> np.ndarray:
        """Candidate matrices for explicit (task, core) pairs: ``(P, K, K)``.

        ``task_indices`` and ``core_indices`` are parallel vectors; entry
        ``p`` is ``U^{Psi_{core_p} + tau_{task_p}}``.  This is the flat
        refresh primitive of the incremental backend: every stale
        (task, core) hypothesis of a whole micro-batch goes through one
        kernel call.  Exact for the same reason as
        :meth:`candidate_stacks` — utilization rows are zero above each
        task's criticality, so the full-row add touches only ``:crit``.
        """
        ti = np.asarray(task_indices, dtype=np.int64)
        ci = np.asarray(core_indices, dtype=np.int64)
        if ti.shape != ci.shape or ti.ndim != 1:
            raise PartitionError(
                "task_indices and core_indices must be parallel 1-D vectors"
            )
        taskset = self._taskset
        mats = self._level_mats[ci]  # advanced indexing: a fresh copy
        rows = taskset.criticalities[ti] - 1
        mats[np.arange(ti.size), rows, :] += taskset.utilization_matrix[ti]
        return mats

    def candidate_stacks(self, task_indices: Sequence[int]) -> np.ndarray:
        """Writable ``(T, M, K, K)`` stacks: each task added to every core.

        Entry ``[t, m]`` is the hypothetical level matrix
        ``U^{Psi_m + tau_{i_t}}`` — the multi-task generalization of
        :meth:`candidate_stack`, built with a single fancy-indexed add so
        the admission daemon can probe a whole micro-batch in one kernel
        call.  Correct because ``utilization_matrix`` rows are zero above
        each task's criticality, so adding the *full* row into row
        ``l_i - 1`` touches exactly the ``:crit`` prefix.
        """
        idx = np.asarray(task_indices, dtype=np.int64)
        if idx.ndim != 1:
            raise PartitionError("task_indices must be a 1-D sequence")
        taskset = self._taskset
        shape = (idx.size,) + self._level_mats.shape
        stacks = np.broadcast_to(self._level_mats, shape).copy()
        rows = taskset.criticalities[idx] - 1
        stacks[np.arange(idx.size), :, rows, :] += (
            taskset.utilization_matrix[idx][:, None, :]
        )
        return stacks

    def core_utilizations(self, rule: str = "max") -> np.ndarray:
        """Per-core Eq.-(9) utilizations ``U^{Psi_m}``: a ``(M,)`` copy.

        Empty cores are 0; infeasible cores are ``inf``.  Results are
        cached per ``rule`` and invalidated core-by-core on
        :meth:`assign`, so repeated metric evaluations only pay for the
        cores that actually changed.
        """
        cache = self._util_cache.get(rule)
        if cache is None:
            cache = np.full(self._cores, np.nan, dtype=np.float64)
            self._util_cache[rule] = cache
        stale = np.flatnonzero(np.isnan(cache))
        if stale.size:
            empty = self._counts[stale] == 0
            cache[stale[empty]] = 0.0
            todo = stale[~empty]
            if todo.size:
                # Deferred import: repro.analysis pulls this module in.
                from repro.analysis.batch import batch_core_utilization

                cache[todo] = batch_core_utilization(
                    self._level_mats[todo], rule=rule
                )
        return cache.copy()

    def core_utilization(self, core: int, rule: str = "max") -> float:
        """Cached Eq.-(9) utilization of one core (see :meth:`core_utilizations`)."""
        self._check_core(core)
        return float(self.core_utilizations(rule)[core])

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def assign(self, task_index: int, core: int) -> None:
        """Assign ``task_index`` to ``core`` (exactly once per task)."""
        self._check_mutable()
        self._check_core(core)
        if not 0 <= task_index < len(self._taskset):
            raise PartitionError(f"task index {task_index} out of range")
        if self._assignment[task_index] >= 0:
            raise PartitionError(
                f"task {task_index} already assigned to core"
                f" {self._assignment[task_index]}"
            )
        self._assignment[task_index] = core
        crit = self._taskset[task_index].criticality
        # The base array is writable only inside this window.
        self._level_mats.setflags(write=True)
        try:
            self._level_mats[core, crit - 1, :crit] += (
                self._taskset.utilization_matrix[task_index, :crit]
            )
        finally:
            self._level_mats.setflags(write=False)
        self._counts[core] += 1
        self._core_seq[core] += 1
        for cache in self._util_cache.values():
            cache[core] = np.nan

    def unassign(self, task_index: int) -> int:
        """Remove ``task_index`` from its core; returns that core.

        The core's level matrix is *recomputed* from its remaining tasks
        rather than decremented, so repeated assign/unassign cycles (the
        admission daemon rolling back a rejected placement) never
        accumulate floating-point drift.
        """
        self._check_mutable()
        if not 0 <= task_index < len(self._taskset):
            raise PartitionError(f"task index {task_index} out of range")
        core = int(self._assignment[task_index])
        if core < 0:
            raise PartitionError(f"task {task_index} is not assigned")
        self._assignment[task_index] = -1
        self._counts[core] -= 1
        remaining = np.flatnonzero(self._assignment == core)
        taskset = self._taskset
        fresh = np.zeros_like(self._level_mats[core])
        if remaining.size:
            # One np.add.at accumulates every remaining task's full
            # utilization row into its criticality row (rows are zero
            # above l_i, so the full-row add is exact).
            np.add.at(
                fresh,
                taskset.criticalities[remaining] - 1,
                taskset.utilization_matrix[remaining],
            )
        self._level_mats.setflags(write=True)
        try:
            self._level_mats[core] = fresh
        finally:
            self._level_mats.setflags(write=False)
        self._core_seq[core] += 1
        for cache in self._util_cache.values():
            cache[core] = np.nan
        return core

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> "Partition":
        """A frozen, independent copy for lock-free concurrent readers.

        The copy shares the (immutable) task set but owns its arrays;
        :meth:`assign`/:meth:`unassign` on it raise, so the admission
        daemon can hand snapshots to reader tasks while the coordinator
        keeps mutating the live partition.
        """
        snap = Partition.__new__(Partition)
        snap._taskset = self._taskset
        snap._cores = self._cores
        snap._assignment = self._assignment.copy()
        snap._assignment.setflags(write=False)
        snap._level_mats = self._level_mats.copy()
        snap._level_mats.setflags(write=False)
        snap._counts = self._counts.copy()
        snap._counts.setflags(write=False)
        # Utilization caches stay writable: lazy cache fill is not a
        # logical mutation of the partition.
        snap._util_cache = {r: c.copy() for r, c in self._util_cache.items()}
        snap._core_seq = self._core_seq.copy()
        # Probe-backend caches are per-partition (they pair cached values
        # with *this* object's version counters), so the snapshot starts
        # cold; backends refill lazily, which is not a logical mutation.
        snap.probe_state = {}
        snap._frozen = True
        return snap

    def extended(self, taskset: MCTaskSet) -> "Partition":
        """A new mutable partition over a *grown* task set, warm-started.

        ``taskset`` must contain this partition's tasks as a prefix (same
        ``K``); the appended tasks start unassigned.  The per-core level
        matrices and counts carry over verbatim — no O(N) reassignment
        loop — which is how the admission daemon admits new tasks into a
        live system without replaying history.
        """
        old = self._taskset
        n = len(old)
        if taskset.levels != old.levels:
            raise PartitionError(
                f"extended task set must keep K={old.levels}, "
                f"got K={taskset.levels}"
            )
        if len(taskset) < n or list(taskset)[:n] != list(old):
            raise PartitionError(
                "extended task set must contain the current tasks as a prefix"
            )
        part = Partition(taskset, self._cores)
        part._assignment[:n] = self._assignment
        part._level_mats.setflags(write=True)
        try:
            part._level_mats[:] = self._level_mats
        finally:
            part._level_mats.setflags(write=False)
        part._counts[:] = self._counts
        # Version counters carry verbatim: the per-core matrices are the
        # same, so probe caches keyed on them stay valid for the prefix
        # tasks.  Backends decide what survives via carried(n_prefix)
        # (rows for appended indices must be dropped — the index space
        # above ``n`` now means different tasks than in any rebuilt
        # sibling partition).
        part._core_seq[:] = self._core_seq
        for name, state in self.probe_state.items():
            carried = getattr(state, "carried", None)
            if carried is None:
                continue
            kept = carried(n)
            if kept is not None:
                part.probe_state[name] = kept
        return part

    # ------------------------------------------------------------------
    def core_subsets(self) -> list[list[int]]:
        """Per-core lists of assigned task indices (``Gamma`` as index lists)."""
        return [self.tasks_on(m) for m in range(self._cores)]

    def core_tasksets(self) -> list[MCTaskSet | None]:
        """Per-core :class:`MCTaskSet` objects (``None`` for empty cores)."""
        out: list[MCTaskSet | None] = []
        for m in range(self._cores):
            idx = self.tasks_on(m)
            out.append(self._taskset.subset(idx) if idx else None)
        return out

    @classmethod
    def from_assignment(
        cls, taskset: MCTaskSet, cores: int, assignment: Sequence[int] | Iterable[int]
    ) -> "Partition":
        """Build a partition from an explicit task->core vector."""
        part = cls(taskset, cores)
        for i, core in enumerate(assignment):
            if core >= 0:
                part.assign(i, int(core))
        return part

    # ------------------------------------------------------------------
    def _check_mutable(self) -> None:
        if self._frozen:
            raise PartitionError("partition snapshot is immutable")

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self._cores:
            raise PartitionError(
                f"core index {core} out of range [0, {self._cores})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        done = int((self._assignment >= 0).sum())
        return f"Partition(M={self._cores}, assigned={done}/{len(self._taskset)})"
