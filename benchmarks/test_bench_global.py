"""Extension bench: partitioned vs global scheduling.

Section I of the paper justifies the partitioned approach by citing the
empirical finding that "partitioned scheduling generally outperforms
global scheduling in terms of the feasibility performance".  This bench
makes that claim executable on the paper's own workloads: partitioned
EDF-VD acceptance (CA-TPA / FFD) vs the global EDF-VD admission test,
on dual-criticality task sets.
"""

import numpy as np
from conftest import bench_sets

from repro.analysis import global_edfvd_admission
from repro.gen import WorkloadConfig, generate_taskset
from repro.partition import get_partitioner


def test_partitioned_vs_global(benchmark, emit):
    nsu_grid = (0.45, 0.55, 0.65)
    sets = max(20, bench_sets(100) // 2)
    cores = 4

    def campaign():
        table = {}
        for nsu in nsu_grid:
            cfg = WorkloadConfig(
                cores=cores, levels=2, nsu=nsu, task_count_range=(10, 20)
            )
            counts = {"ca-tpa": 0, "ffd": 0, "global-edfvd": 0}
            catpa = get_partitioner("ca-tpa")
            ffd = get_partitioner("ffd")
            for i in range(sets):
                rng = np.random.default_rng(
                    np.random.SeedSequence(66, spawn_key=(i,))
                )
                ts = generate_taskset(cfg, rng)
                counts["ca-tpa"] += catpa.partition(ts, cores).schedulable
                counts["ffd"] += ffd.partition(ts, cores).schedulable
                counts["global-edfvd"] += global_edfvd_admission(
                    ts, cores
                ).schedulable
            table[nsu] = {k: v / sets for k, v in counts.items()}
        return table

    table = benchmark.pedantic(campaign, rounds=1, iterations=1)

    schemes = ("ca-tpa", "ffd", "global-edfvd")
    header = f"{'NSU':>5} | " + " ".join(f"{s:>13}" for s in schemes)
    lines = [
        f"Partitioned vs global EDF-VD acceptance (K=2, M={cores},"
        f" {sets} sets/point)",
        header,
        "-" * len(header),
    ]
    for nsu, row in table.items():
        lines.append(
            f"{nsu:>5} | " + " ".join(f"{row[s]:>13.3f}" for s in schemes)
        )
    emit("partitioned_vs_global", "\n".join(lines))

    # The paper's Section-I claim: partitioned acceptance dominates the
    # global admission at every load level (small noise slack).
    for nsu in nsu_grid:
        assert table[nsu]["ca-tpa"] >= table[nsu]["global-edfvd"] - 0.05, nsu
        assert table[nsu]["ffd"] >= table[nsu]["global-edfvd"] - 0.05, nsu
