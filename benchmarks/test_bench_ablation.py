"""Ablation: which CA-TPA ingredient buys what (DESIGN.md §5).

Swaps one design decision at a time — ordering rule, core-selection
rule, imbalance override — and reports the schedulability ratio of each
variant on the same workload, alongside FFD as the classical anchor.
"""

import numpy as np
from conftest import bench_sets, emit as _emit  # noqa: F401

from repro.experiments import SchemeSpec, evaluate_point
from repro.gen import WorkloadConfig


def ablation_specs():
    return [
        SchemeSpec.make("ca-tpa", label="paper (contrib/min-inc/a=0.7)"),
        SchemeSpec.make(
            "ca-tpa-variant", label="order: max-utilization", order="max-utilization"
        ),
        SchemeSpec.make(
            "ca-tpa-variant", label="order: criticality-first", order="criticality"
        ),
        SchemeSpec.make(
            "ca-tpa-variant", label="selection: first-fit", selection="first-fit"
        ),
        SchemeSpec.make(
            "ca-tpa-variant", label="selection: worst-fit", selection="worst-fit"
        ),
        SchemeSpec.make("ca-tpa", label="no imbalance override", alpha=None),
        SchemeSpec.make("ca-tpa", label="Eq.9 min rule", eq9_rule="min"),
        SchemeSpec.make("ffd", label="ffd (classical anchor)"),
    ]


def test_catpa_ablation(benchmark, emit):
    config = WorkloadConfig(nsu=0.55)  # mid-transition: differences visible

    def run():
        return evaluate_point(
            config, schemes=ablation_specs(), sets=bench_sets(), seed=2016, jobs=None
        )

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["CA-TPA ablation at NSU=0.55 (schedulability ratio / imbalance)"]
    for label, s in stats.items():
        imb = "-" if np.isnan(s.imbalance) else f"{s.imbalance:.3f}"
        lines.append(f"  {label:>32}: {s.sched_ratio:.3f} / {imb}")
    emit("ablation_catpa", "\n".join(lines))

    # Sanity: worst-fit selection must not beat the paper's min-increment
    # by a wide margin (it is the known-weak spreading strategy).
    paper = stats["paper (contrib/min-inc/a=0.7)"].sched_ratio
    worst_fit = stats["selection: worst-fit"].sched_ratio
    assert worst_fit <= paper + 0.05
