"""Micro-benchmarks: wall-clock cost of each partitioning heuristic.

Not a paper artifact — this validates the complexity discussion of
Section III (CA-TPA is O((M+N)*N) with a K^2 probe constant) and guards
the library against performance regressions.
"""

import numpy as np
import pytest

from repro.gen import WorkloadConfig, generate_taskset
from repro.partition import PAPER_SCHEMES, get_partitioner


def workload(cores=8, n_tasks=120, seed=13):
    config = WorkloadConfig(cores=cores, task_count_range=(n_tasks, n_tasks))
    rng = np.random.default_rng(seed)
    return config, generate_taskset(config, rng, n_tasks=n_tasks)


@pytest.mark.parametrize("scheme", PAPER_SCHEMES)
def test_partition_cost(benchmark, scheme):
    config, ts = workload()
    partitioner = get_partitioner(scheme)
    benchmark(partitioner.partition, ts, config.cores)


def test_catpa_scales_with_cores(benchmark):
    config, ts = workload(cores=32)
    partitioner = get_partitioner("ca-tpa")
    result = benchmark(partitioner.partition, ts, 32)
    assert result.partition.cores == 32


def test_probe_cost(benchmark):
    """A single CA-TPA probe (the hot inner loop)."""
    from repro.model import Partition
    from repro.partition.probe import probe_core_utilization

    config, ts = workload()
    part = Partition(ts, config.cores)
    for i in range(40):
        part.assign(i, i % config.cores)
    benchmark(probe_core_utilization, part, 0, 41)
