"""Extension bench: utilization-based vs DBF-based partitioned MC tests.

Compares, on dual-criticality workloads, the acceptance ratio and cost
of CA-TPA / FFD (Theorem-1 feasibility) against the DBF-based first-fit
scheme (Ekberg-Yi demand analysis with deadline tuning) — the
"much higher complexity" comparator the paper references.
"""

import time

import numpy as np
from conftest import bench_sets

from repro.gen import WorkloadConfig, generate_taskset
from repro.partition import get_partitioner


def test_dbf_vs_utilization_tests(benchmark, emit):
    config = WorkloadConfig(cores=2, levels=2, nsu=0.75, task_count_range=(8, 16))
    sets = max(20, bench_sets(100) // 2)
    schemes = {
        "ca-tpa": get_partitioner("ca-tpa"),
        "ffd": get_partitioner("ffd"),
        "dbf-ffd": get_partitioner("dbf-ffd"),
    }

    def campaign():
        accepted = {name: 0 for name in schemes}
        cost = {name: 0.0 for name in schemes}
        for i in range(sets):
            rng = np.random.default_rng(np.random.SeedSequence(77, spawn_key=(i,)))
            ts = generate_taskset(config, rng)
            for name, scheme in schemes.items():
                start = time.perf_counter()
                accepted[name] += scheme.partition(ts, config.cores).schedulable
                cost[name] += time.perf_counter() - start
        return accepted, cost

    accepted, cost = benchmark.pedantic(campaign, rounds=1, iterations=1)

    lines = [
        f"Dual-criticality acceptance, {sets} sets (M=2, NSU=0.75)",
        f"{'scheme':>8} {'ratio':>7} {'ms/set':>8}",
    ]
    for name in schemes:
        lines.append(
            f"{name:>8} {accepted[name] / sets:>7.3f}"
            f" {cost[name] / sets * 1e3:>8.2f}"
        )
    emit("dbf_comparison", "\n".join(lines))

    # The DBF analysis is finer: it must accept at least as many sets as
    # the utilization-based FFD (small tolerance for tuning artefacts)...
    assert accepted["dbf-ffd"] >= accepted["ffd"] - max(1, sets // 50)
    # ...at visibly higher cost.
    assert cost["dbf-ffd"] > cost["ffd"]
