"""Figure 5: impact of the number of criticality levels K.

With NSU fixed at level 1, a larger K means more WCET inflation for the
top tasks (IFC compounds per level), so every scheme's schedulability
falls quickly with K — the paper's Figure 5(a) shape.
"""

from conftest import run_figure

from repro.experiments import figure5_levels


def test_fig5_levels(benchmark, emit_artifact):
    result = benchmark.pedantic(
        lambda: run_figure(figure5_levels), rounds=1, iterations=1
    )
    emit_artifact("fig5_levels", result)

    ratios = result.series("sched_ratio")
    for scheme, series in ratios.items():
        # sharply decreasing in K (weak-monotone with noise allowance)
        for lo, hi in zip(series, series[1:]):
            assert hi <= lo + 0.05, f"{scheme} ratio increased with K: {series}"
        assert series[0] >= series[-1]
    # All schemes start near-perfect at K=2 under the default NSU=0.6.
    assert min(ratios[s][0] for s in ratios) > 0.5
