"""Figure 3: impact of the workload-imbalance threshold alpha.

Only CA-TPA consumes alpha, so the baselines' curves are flat by
construction; raising alpha lets CA-TPA pack more aggressively (higher
schedulability, less balance), per Section IV-B.
"""

from conftest import run_figure

from repro.experiments import figure3_alpha


def test_fig3_alpha(benchmark, emit_artifact):
    result = benchmark.pedantic(
        lambda: run_figure(figure3_alpha), rounds=1, iterations=1
    )
    emit_artifact("fig3_alpha", result)

    ratios = result.series("sched_ratio")
    # Baselines ignore alpha: their series are exactly constant.
    for scheme in ("ffd", "bfd", "wfd", "hybrid"):
        series = ratios[scheme]
        assert max(series) - min(series) < 1e-12, scheme

    # CA-TPA's schedulability is (weakly) non-decreasing in alpha, and
    # its imbalance at the loosest threshold is at least what it is at
    # the tightest (more packing freedom -> less balance).
    ca_ratio = ratios["ca-tpa"]
    assert ca_ratio[-1] >= ca_ratio[0] - 0.03
    ca_imb = result.series("imbalance")["ca-tpa"]
    if ca_ratio[0] > 0.05 and ca_ratio[-1] > 0.05:
        assert ca_imb[-1] >= ca_imb[0] - 0.05
