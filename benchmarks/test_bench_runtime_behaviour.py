"""Extension bench: runtime behaviour of the partitions each scheme builds.

The paper evaluates partitions analytically (acceptance, utilization,
balance).  This bench asks the complementary runtime question: once
deployed, how do the partitions *behave* under the same overload —
how many mode switches occur, how many LO jobs get dropped, how much
work completes?  Schemes that co-locate criticalities differently pay
different overload penalties, which analysis-only metrics never show.
"""

import numpy as np
from conftest import bench_sets

from repro.gen import WorkloadConfig, generate_taskset
from repro.partition import get_partitioner
from repro.sched import RandomScenario, SystemSimulator

SCHEMES = ("ca-tpa", "ffd", "wfd", "hybrid")


def test_runtime_behaviour_of_partitions(benchmark, emit):
    cfg = WorkloadConfig(cores=4, levels=2, nsu=0.55, task_count_range=(16, 24))
    sets = max(10, bench_sets(60) // 6)

    def campaign():
        totals = {
            s: {"sets": 0, "switches": 0, "dropped": 0, "released": 0,
                "completed": 0, "misses": 0}
            for s in SCHEMES
        }
        partitioners = {s: get_partitioner(s) for s in SCHEMES}
        for i in range(sets):
            rng = np.random.default_rng(np.random.SeedSequence(99, spawn_key=(i,)))
            ts = generate_taskset(cfg, rng)
            results = {
                s: partitioners[s].partition(ts, cfg.cores) for s in SCHEMES
            }
            if not all(r.schedulable for r in results.values()):
                continue  # compare behaviour on commonly-accepted sets only
            for s, res in results.items():
                report = SystemSimulator(
                    res.partition,
                    RandomScenario(overrun_prob=0.15),
                    horizon=10000.0,
                ).run(seed=i)
                t = totals[s]
                t["sets"] += 1
                t["switches"] += report.mode_switches
                t["dropped"] += report.dropped
                t["released"] += report.released
                t["completed"] += report.completed
                t["misses"] += report.miss_count
        return totals

    totals = benchmark.pedantic(campaign, rounds=1, iterations=1)

    header = (
        f"{'scheme':>8} {'sets':>5} {'switch/set':>11} {'drop %':>7}"
        f" {'done %':>7} {'misses':>7}"
    )
    lines = [
        "Runtime behaviour under sporadic overruns (commonly-accepted sets)",
        header,
        "-" * len(header),
    ]
    for s, t in totals.items():
        if t["sets"] == 0:
            lines.append(f"{s:>8}  (no commonly accepted sets)")
            continue
        lines.append(
            f"{s:>8} {t['sets']:>5} {t['switches'] / t['sets']:>11.1f}"
            f" {100 * t['dropped'] / t['released']:>7.2f}"
            f" {100 * t['completed'] / t['released']:>7.2f}"
            f" {t['misses']:>7}"
        )
    emit("runtime_behaviour", "\n".join(lines))

    for s, t in totals.items():
        assert t["misses"] == 0, s  # the guarantee holds for every scheme
