"""Figure 2: performance of the partitioning schemes with varying IFC.

A larger WCET increment factor inflates every higher-level budget, so
schedulability must fall as IFC grows (Section IV-B: "a greater IFC
causes higher system workload and lower acceptance ratio").
"""

from conftest import run_figure

from repro.experiments import figure2_ifc


def test_fig2_ifc(benchmark, emit_artifact):
    result = benchmark.pedantic(
        lambda: run_figure(figure2_ifc), rounds=1, iterations=1
    )
    emit_artifact("fig2_ifc", result)

    ratios = result.series("sched_ratio")
    for scheme, series in ratios.items():
        for lo, hi in zip(series, series[1:]):
            assert hi <= lo + 0.05, f"{scheme} ratio increased with IFC: {series}"
    # CA-TPA stays competitive with the best classical scheme and is
    # more balanced than FFD/BFD wherever it schedules sets.
    imb = result.series("imbalance")
    for i in range(len(result.definition.values)):
        best = max(ratios[s][i] for s in ratios)
        assert ratios["ca-tpa"][i] >= best - 0.07
        if ratios["ca-tpa"][i] > 0.05 and ratios["ffd"][i] > 0.05:
            assert imb["ca-tpa"][i] <= imb["ffd"][i] + 0.05
