"""The headline-gap evidence: pairwise dominance between the schemes.

EXPERIMENTS.md reports that CA-TPA ties FFD/BFD within noise at the
paper's defaults; this bench regenerates the underlying win/loss
matrix (which aggregate ratios hide) so the claim stays auditable.
"""

from conftest import bench_sets

from repro.experiments import (
    SchemeSpec,
    format_head_to_head,
    head_to_head,
)
from repro.gen import WorkloadConfig


def test_head_to_head_matrix(benchmark, emit):
    cfg = WorkloadConfig(nsu=0.55)  # mid-transition: differences visible
    specs = [
        SchemeSpec.make(name) for name in ("ca-tpa", "ffd", "bfd", "wfd", "hybrid")
    ]
    sets = bench_sets(120)

    result = benchmark.pedantic(
        lambda: head_to_head(cfg, specs, sets=sets, seed=2016),
        rounds=1,
        iterations=1,
    )
    emit("head_to_head", format_head_to_head(result))

    # FFD and BFD behave near-identically on these workloads.
    assert abs(result.accepted["ffd"] - result.accepted["bfd"]) <= sets // 20
    # CA-TPA is within a small band of the best classical scheme.
    best = max(result.accepted[s] for s in ("ffd", "bfd", "wfd", "hybrid"))
    assert result.accepted["ca-tpa"] >= best - max(2, sets // 10)
