"""Figure 1: performance of the partitioning schemes with varying NSU.

Regenerates all four panels (schedulability ratio, U_sys, U_avg,
Lambda) across NSU in [0.4, 0.8] for the five schemes, and checks the
qualitative shape claims of Section IV-B that are reproducible (see
EXPERIMENTS.md for the full paper-vs-measured discussion).
"""

from conftest import run_figure

from repro.experiments import figure1_nsu


def test_fig1_nsu(benchmark, emit_artifact):
    result = benchmark.pedantic(
        lambda: run_figure(figure1_nsu), rounds=1, iterations=1
    )
    emit_artifact("fig1_nsu", result)

    ratios = result.series("sched_ratio")
    # (shape) higher NSU never helps any scheme (weak monotone decrease).
    for scheme, series in ratios.items():
        for lo, hi in zip(series, series[1:]):
            assert hi <= lo + 0.05, f"{scheme} ratio increased with NSU: {series}"
    # (shape) WFD is never the best scheme at a contended point.
    for i, nsu in enumerate(result.definition.values):
        point = {s: ratios[s][i] for s in ratios}
        if 0.03 < max(point.values()) < 0.97:
            assert point["wfd"] <= max(point.values()), nsu
            assert point["wfd"] <= point["ca-tpa"] + 0.05
