"""Tables I-III: the worked example where FFD fails and CA-TPA succeeds."""

from conftest import run_figure  # noqa: F401  (shared conftest import path)

from repro.experiments import (
    allocation_trace,
    format_allocation_trace,
    format_table1,
    paper_example_taskset,
)
from repro.partition import CATPA, FirstFitDecreasing


def test_tables_1_to_3(benchmark, emit):
    def regenerate():
        ts = paper_example_taskset()
        ffd_steps = allocation_trace(FirstFitDecreasing(), ts, cores=2)
        ca_steps = allocation_trace(CATPA(), ts, cores=2)
        return ts, ffd_steps, ca_steps

    ts, ffd_steps, ca_steps = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    text = "\n\n".join(
        [
            format_table1(ts),
            format_allocation_trace("Table II: allocations under FFD", ts, ffd_steps),
            format_allocation_trace(
                "Table III: allocations under CA-TPA", ts, ca_steps
            ),
        ]
    )
    emit("tables_1_to_3", text)

    assert ffd_steps[-1].core is None  # FFD strands the last task
    assert all(s.core is not None for s in ca_steps)  # CA-TPA places all five
