"""Extension bench: sensitivity to the criticality mix.

The paper draws task criticalities uniformly over ``1..K``.  Real IMA
workloads skew low (few DAL-A functions, many DAL-D/E ones).  This bench
sweeps the mix from strongly-low-skewed to strongly-high-skewed and
reports each scheme's acceptance — showing where criticality-aware
allocation matters most.
"""

from conftest import bench_sets

from repro.experiments import SchemeSpec, evaluate_point
from repro.gen import WorkloadConfig

MIXES = {
    "low-skew (8:4:2:1)": (8.0, 4.0, 2.0, 1.0),
    "uniform (paper)": None,
    "high-skew (1:2:4:8)": (1.0, 2.0, 4.0, 8.0),
}


def test_criticality_mix_sensitivity(benchmark, emit):
    sets = bench_sets(120)
    schemes = [
        SchemeSpec.make(name) for name in ("ca-tpa", "ffd", "wfd", "hybrid")
    ]

    def campaign():
        table = {}
        for label, weights in MIXES.items():
            cfg = WorkloadConfig(nsu=0.5, crit_weights=weights)
            stats = evaluate_point(cfg, schemes=schemes, sets=sets, seed=2016)
            table[label] = {k: v.sched_ratio for k, v in stats.items()}
        return table

    table = benchmark.pedantic(campaign, rounds=1, iterations=1)

    names = [s.label for s in schemes]
    header = f"{'criticality mix':>22} | " + " ".join(f"{n:>8}" for n in names)
    lines = [
        f"Criticality-mix sensitivity (K=4, NSU=0.5, {sets} sets/point)",
        header,
        "-" * len(header),
    ]
    for label, row in table.items():
        lines.append(
            f"{label:>22} | " + " ".join(f"{row[n]:>8.3f}" for n in names)
        )
    emit("sensitivity_crit_mix", "\n".join(lines))

    # Low-skewed mixes carry less high-level WCET inflation, so every
    # scheme accepts at least as much there as on the high-skewed mix.
    for name in names:
        low = table["low-skew (8:4:2:1)"][name]
        high = table["high-skew (1:2:4:8)"][name]
        assert low >= high - 0.05, name
