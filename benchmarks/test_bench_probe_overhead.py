"""Disabled-instrumentation overhead on the Theorem-1 probe hot path.

The observability layer's contract is that when :data:`repro.obs.OBS`
is disabled (the default), an instrumented call site costs one attribute
load and a branch.  This benchmark pins that contract: it replays the
CA-TPA placement states of the Fig.-1 default workload (exactly like
``test_bench_probe_speed.py``) and times the Eq.-(15) probe twice per
state —

* **raw**: the bare batch kernel,
  ``_core_utilization_stack(partition.candidate_stack(i), "max")``,
  with no instrumentation guard at all;
* **guarded**: the public :func:`repro.partition.probe.batch_probe`,
  which adds the ``if OBS.enabled:`` guard (and the rule validation).

The acceptance gate is ``median(guarded / raw) <= 1.02`` over paired
A/B/A chunk timings: the states are split into interleaved chunks, each
chunk is timed raw -> guarded -> raw, and the chunk ratio divides the
guarded time by the mean of its two surrounding raw times.  Pairing
cancels clock drift and the median discards scheduler outliers — the
per-probe kernel is tens of microseconds, so a plain two-big-loops
comparison would gate on machine noise, not on the guard.  The
*enabled* cost is measured alongside and reported for information — it
is allowed to be expensive, it just has to be opt-in.

Results land in ``BENCH_obs_overhead.json`` at the repo root; the
committed ``BENCH_partition.json`` throughput is echoed for context
(cross-run wall-clock comparisons are informational, never gated).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import statistics
import time

import numpy as np
from conftest import bench_sets

from repro import obs
from repro.analysis.batch import _core_utilization_stack
from repro.gen import WorkloadConfig, generate_taskset
from repro.model import Partition
from repro.partition import ordering
from repro.partition.probe import batch_probe

REPO_ROOT = pathlib.Path(__file__).parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_obs_overhead.json"
BASELINE_PATH = REPO_ROOT / "BENCH_partition.json"
SEED = 2016
CHUNKS = 16  #: interleaved state chunks, each timed raw -> guarded -> raw
ROUNDS = 3  #: full passes over all chunks (CHUNKS * ROUNDS paired ratios)
MAX_DISABLED_OVERHEAD = 1.02  #: median guarded/raw ratio gate (< 2 %)


def _replay_states(config: WorkloadConfig, sets: int):
    """The (partition, task_index) probe states of a greedy CA-TPA replay.

    The partitions are materialized up front (placement replayed once),
    so the timed loops below touch identical, pre-built state.
    """
    rng = np.random.default_rng(SEED)
    states = []
    for _ in range(sets):
        taskset = generate_taskset(config, rng)
        partition = Partition(taskset, config.cores)
        placed: list[tuple[int, int]] = []
        for task_index in ordering.by_contribution(taskset):
            # A fresh partition per probe state keeps every recorded
            # state alive and immutable for the timing loops.
            snapshot = Partition(taskset, config.cores)
            for i, m in placed:
                snapshot.assign(i, m)
            states.append((snapshot, task_index))
            new_utils = _core_utilization_stack(
                partition.candidate_stack(task_index), "max"
            )
            finite = np.isfinite(new_utils)
            if not finite.any():
                break
            target = int(np.argmin(np.where(finite, new_utils, np.inf)))
            partition.assign(task_index, target)
            placed.append((task_index, target))
    return states


def _time_chunk(fn, chunk, passes: int = 3) -> float:
    """Best-of-``passes`` wall time of ``fn`` over a chunk of states.

    The minimum is the measurement least polluted by preemption and
    frequency scaling; the A/B/A pairing around it handles the drift
    that the minimum cannot.
    """
    best = float("inf")
    for _ in range(passes):
        start = time.perf_counter()
        for partition, task_index in chunk:
            fn(partition, task_index)
        best = min(best, time.perf_counter() - start)
    return best


def _raw(partition, task_index):
    return _core_utilization_stack(partition.candidate_stack(task_index), "max")


def _paired_ratios(fn, chunks) -> tuple[list[float], float, float]:
    """Per-chunk ``fn / raw`` ratios from A/B/A paired timings.

    Returns ``(ratios, total_raw_seconds, total_fn_seconds)``; each
    chunk's raw time is the mean of the two runs bracketing the ``fn``
    run, so slow clock drift cancels out of the ratio.
    """
    ratios = []
    raw_total = fn_total = 0.0
    for _ in range(ROUNDS):
        for chunk in chunks:
            before = _time_chunk(_raw, chunk)
            timed = _time_chunk(fn, chunk)
            after = _time_chunk(_raw, chunk)
            ratios.append(timed / ((before + after) / 2))
            raw_total += before + after
            fn_total += timed
    return ratios, raw_total / 2, fn_total


def test_disabled_instrumentation_overhead(emit):
    config = WorkloadConfig()  # the Fig.-1 default point
    sets = bench_sets(60)
    states = _replay_states(config, sets)
    chunks = [states[k::CHUNKS] for k in range(CHUNKS)]
    assert not obs.OBS.enabled  # the default state is what we are gating

    disabled_ratios, raw_s, guarded_s = _paired_ratios(batch_probe, chunks)
    disabled_ratio = statistics.median(disabled_ratios)

    with obs.instrument():
        enabled_ratios, _, enabled_s = _paired_ratios(batch_probe, chunks)
        # Inside an open span the probe additionally accumulates its
        # timing bucket on the innermost frame — the cost an actual
        # instrumented sweep pays (informational, not gated).
        with obs.span("bench.overhead"):
            in_span_ratios, _, in_span_s = _paired_ratios(batch_probe, chunks)
    enabled_ratio = statistics.median(enabled_ratios)
    in_span_ratio = statistics.median(in_span_ratios)

    baseline_note = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        committed_pps = baseline["probe"]["batch"]["probes_per_sec"]
        measured_pps = len(states) * ROUNDS / guarded_s
        baseline_note = (
            f"committed BENCH_partition.json batch path: "
            f"{committed_pps:.0f} probes/sec; this run (guarded, disabled): "
            f"{measured_pps:.0f} probes/sec (informational — different "
            "machines/loads are not comparable)"
        )

    payload = {
        "benchmark": "obs-disabled-overhead",
        "workload": dataclasses.asdict(config),
        "sets": sets,
        "seed": SEED,
        "probes": len(states),
        "chunks": CHUNKS,
        "rounds": ROUNDS,
        "raw_seconds": raw_s,
        "guarded_disabled_seconds": guarded_s,
        "guarded_enabled_seconds": enabled_s,
        "guarded_enabled_in_span_seconds": in_span_s,
        "disabled_overhead_ratio": disabled_ratio,
        "enabled_overhead_ratio": enabled_ratio,
        "enabled_in_span_overhead_ratio": in_span_ratio,
        "gate": MAX_DISABLED_OVERHEAD,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    n_ratios = CHUNKS * ROUNDS
    lines = [
        "Observability overhead on the Eq.-(15) probe hot path "
        f"({len(states)} probes, median of {n_ratios} paired A/B/A ratios)",
        "",
        f"  {'path':<22} {'seconds':>10} {'vs raw':>8}",
        f"  {'raw kernel':<22} {raw_s:>10.4f} {'1.00x':>8}",
        f"  {'guarded, disabled':<22} {guarded_s:>10.4f} "
        f"{disabled_ratio:>7.3f}x",
        f"  {'guarded, enabled':<22} {enabled_s:>10.4f} "
        f"{enabled_ratio:>7.3f}x",
        f"  {'enabled, in span':<22} {in_span_s:>10.4f} "
        f"{in_span_ratio:>7.3f}x",
        "",
        f"  gate: disabled overhead <= {MAX_DISABLED_OVERHEAD:.2f}x (median)",
    ]
    if baseline_note:
        lines += ["", f"  {baseline_note}"]
    emit("probe_overhead", "\n".join(lines))

    assert disabled_ratio <= MAX_DISABLED_OVERHEAD, (
        f"disabled instrumentation costs {(disabled_ratio - 1) * 100:.1f}% "
        f"on the probe hot path (gate: "
        f"{(MAX_DISABLED_OVERHEAD - 1) * 100:.0f}%)"
    )
