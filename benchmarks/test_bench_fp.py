"""Extension bench: partitioned EDF-VD vs partitioned fixed-priority AMC.

The classic scheduler-family comparison the MC literature cares about,
run on the paper's dual-criticality workloads: Eq.-(7) EDF-VD packing
(ffd / ca-tpa) against AMC-rtb + Audsley FP packing (Kelly-style
fp-ff / fp-wf / fp-ff-ca) and the DBF-based comparator.
"""

import numpy as np
from conftest import bench_sets

from repro.gen import WorkloadConfig, generate_taskset
from repro.partition import get_partitioner

SCHEMES = ("ca-tpa", "ffd", "fp-ff", "fp-wf", "fp-ff-ca", "dbf-ffd")


def test_fp_vs_edfvd(benchmark, emit):
    nsu_grid = (0.65, 0.75, 0.85)
    sets = max(20, bench_sets(100) // 2)

    def campaign():
        table = {}
        for nsu in nsu_grid:
            cfg = WorkloadConfig(
                cores=2, levels=2, nsu=nsu, task_count_range=(8, 16)
            )
            row = {}
            for name in SCHEMES:
                scheme = get_partitioner(name)
                ok = 0
                for i in range(sets):
                    rng = np.random.default_rng(
                        np.random.SeedSequence(55, spawn_key=(i,))
                    )
                    ts = generate_taskset(cfg, rng)
                    ok += scheme.partition(ts, cfg.cores).schedulable
                row[name] = ok / sets
            table[nsu] = row
        return table

    table = benchmark.pedantic(campaign, rounds=1, iterations=1)

    header = f"{'NSU':>5} | " + " ".join(f"{s:>9}" for s in SCHEMES)
    lines = [
        f"Partitioned EDF-VD vs FP (K=2, M=2, {sets} sets/point)",
        header,
        "-" * len(header),
    ]
    for nsu, row in table.items():
        lines.append(
            f"{nsu:>5} | " + " ".join(f"{row[s]:>9.3f}" for s in SCHEMES)
        )
    emit("fp_vs_edfvd", "\n".join(lines))

    # Sanity: acceptance declines with load for every scheme.
    for name in SCHEMES:
        series = [table[nsu][name] for nsu in nsu_grid]
        for lo, hi in zip(series, series[1:]):
            assert hi <= lo + 0.1, name
    # The DBF comparator dominates the plain Eq.-(7) FFD (small slack).
    for nsu in nsu_grid:
        assert table[nsu]["dbf-ffd"] >= table[nsu]["ffd"] - 0.05
