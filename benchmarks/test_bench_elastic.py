"""Extension bench: graceful degradation curves with elastic LO tasks.

For loads beyond the schedulable region, how much LO service must be
sacrificed to admit the workload?  Sweeps NSU past the feasibility cliff
and reports the rigid acceptance ratio next to the elastic admission's
mean delivered service level (LO tasks may stretch to 2x their period).
"""

import numpy as np
from conftest import bench_sets

from repro.elastic import ElasticMCTask, elastic_admission
from repro.gen import WorkloadConfig, generate_taskset
from repro.partition import CATPA


def make_elastic(taskset, max_stretch=2.0):
    """LO tasks become elastic up to ``max_stretch``; HI tasks stay rigid."""
    return [
        ElasticMCTask(
            task=t,
            max_period=t.period * (max_stretch if t.criticality == 1 else 1.0),
        )
        for t in taskset
    ]


def test_elastic_degradation_curve(benchmark, emit):
    # K=2's feasibility cliff sits near NSU ~ 0.9; sweep across and past
    # it (NSU > 1 over-subscribes even the raw level-1 load).
    nsu_grid = (0.8, 0.9, 1.0, 1.1)
    sets = max(10, bench_sets(60) // 4)
    cfg0 = WorkloadConfig(cores=4, levels=2, task_count_range=(12, 20))

    def campaign():
        rows = {}
        catpa = CATPA()
        for nsu in nsu_grid:
            cfg = cfg0.with_(nsu=nsu)
            rigid_ok = admitted = 0
            service = []
            for i in range(sets):
                rng = np.random.default_rng(
                    np.random.SeedSequence(123, spawn_key=(i,))
                )
                ts = generate_taskset(cfg, rng)
                rigid = catpa.partition(ts, cfg.cores)
                rigid_ok += rigid.schedulable
                adm = elastic_admission(
                    make_elastic(ts), cfg.cores, catpa, steps=15
                )
                if adm.admitted:
                    admitted += 1
                    service.append(adm.mean_service_level)
            rows[nsu] = {
                "rigid_ratio": rigid_ok / sets,
                "elastic_ratio": admitted / sets,
                "mean_service": float(np.mean(service)) if service else float("nan"),
            }
        return rows

    rows = benchmark.pedantic(campaign, rounds=1, iterations=1)

    header = f"{'NSU':>5} {'rigid':>7} {'elastic':>8} {'service':>8}"
    lines = [
        f"Elastic admission (LO stretch <= 2x, K=2, M=4, {sets} sets/point)",
        header,
        "-" * len(header),
    ]
    for nsu, r in rows.items():
        svc = "-" if np.isnan(r["mean_service"]) else f"{r['mean_service']:.3f}"
        lines.append(
            f"{nsu:>5} {r['rigid_ratio']:>7.3f} {r['elastic_ratio']:>8.3f}"
            f" {svc:>8}"
        )
    emit("elastic_degradation", "\n".join(lines))

    for nsu, r in rows.items():
        # Elasticity can only widen the admitted region...
        assert r["elastic_ratio"] >= r["rigid_ratio"] - 1e-12, nsu
        # ...and admitted sets deliver a meaningful service level.
        if not np.isnan(r["mean_service"]):
            assert 0.5 <= r["mean_service"] <= 1.0
