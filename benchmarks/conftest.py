"""Shared helpers for the benchmark suite.

Every figure benchmark regenerates its paper artifact (the data series
behind each panel) and writes the rendered text to
``benchmarks/output/<figure>.txt`` in addition to printing it, so the
series survive the pytest capture.  The workload volume is controlled by
``REPRO_BENCH_SETS`` (task sets per data point; default 150 — the paper
used 50 000, which is a CPU-budget knob, not a modelling one) and
``REPRO_BENCH_JOBS`` (worker processes; default: all cores).
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_sets(default: int = 150) -> int:
    return int(os.environ.get("REPRO_BENCH_SETS", default))


def bench_jobs() -> int | None:
    raw = os.environ.get("REPRO_BENCH_JOBS", "0")
    jobs = int(raw)
    return None if jobs == 0 else jobs


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def emit(output_dir, capsys):
    """Print a report and persist it under benchmarks/output/."""

    def _emit(name: str, text: str) -> None:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)
            print(f"[written to {path}]")

    return _emit


@pytest.fixture
def emit_artifact(emit, output_dir):
    """Persist a figure sweep as rendered text *and* SweepArtifact JSON.

    The committed ``<name>.txt`` is rendered from the committed
    ``<name>.artifact.json`` by ``format_sweep``;
    ``tests/experiments/test_output_artifacts.py`` re-renders the JSON
    and asserts the pair stays in sync, so renderer drift is caught
    without re-running the sweep.
    """

    def _emit(name: str, artifact) -> None:
        from repro.experiments import format_sweep

        path = output_dir / f"{name}.artifact.json"
        path.write_text(artifact.to_json() + "\n")
        emit(name, format_sweep(artifact))

    return _emit


def run_figure(figure_factory, sets=None, seed=2016):
    """Run one figure sweep with the benchmark-scale workload."""
    from repro.experiments import run_sweep

    return run_sweep(
        figure_factory(),
        sets=sets if sets is not None else bench_sets(),
        seed=seed,
        jobs=bench_jobs(),
    )
