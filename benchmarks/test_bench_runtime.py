"""Runtime-simulation benchmarks: validation campaign + throughput.

Not a paper artifact (the paper's evaluation is analysis-only); this is
the repository's extra validation layer: partitions accepted by the
analysis are simulated against adversarial in-model scenarios and must
never miss a deadline.
"""

import numpy as np
from conftest import bench_sets

from repro.gen import WorkloadConfig, generate_taskset
from repro.partition import CATPA
from repro.sched import LevelScenario, RandomScenario, SystemSimulator


def test_validation_campaign(benchmark, emit):
    """Partition + simulate a batch; zero misses expected end to end."""
    config = WorkloadConfig(cores=4, nsu=0.5, task_count_range=(20, 40))
    campaign_sets = max(10, bench_sets(50) // 5)

    def campaign():
        catpa = CATPA()
        simulated = misses = switches = jobs = 0
        for i in range(campaign_sets):
            rng = np.random.default_rng(np.random.SeedSequence(5, spawn_key=(i,)))
            ts = generate_taskset(config, rng)
            res = catpa.partition(ts, config.cores)
            if not res.schedulable:
                continue
            scenario = (
                RandomScenario(overrun_prob=0.3)
                if i % 2
                else LevelScenario(target=config.levels)
            )
            report = SystemSimulator(
                res.partition, scenario, horizon=10000.0
            ).run(seed=i)
            simulated += 1
            misses += report.miss_count
            switches += report.mode_switches
            jobs += report.released
        return simulated, misses, switches, jobs

    simulated, misses, switches, jobs = benchmark.pedantic(
        campaign, rounds=1, iterations=1
    )
    emit(
        "runtime_validation",
        (
            "Runtime validation campaign (CA-TPA partitions, adversarial "
            "in-model scenarios)\n"
            f"  task sets simulated : {simulated}\n"
            f"  jobs released       : {jobs}\n"
            f"  mode switches       : {switches}\n"
            f"  deadline misses     : {misses}   (must be 0)"
        ),
    )
    assert simulated > 0
    assert misses == 0


def test_simulator_throughput(benchmark):
    """Raw event-loop speed on one loaded core (jobs/second figure)."""
    config = WorkloadConfig(cores=1, nsu=0.7, levels=2, task_count_range=(12, 12))
    ts = generate_taskset(config, np.random.default_rng(3), n_tasks=12)
    res = CATPA().partition(ts, 1)
    assert res.schedulable
    sim = SystemSimulator(res.partition, RandomScenario(0.2), horizon=50000.0)
    report = benchmark(sim.run, 7)
    assert report.miss_count == 0
