"""Theorem-1 probe engine throughput: scalar per-core probing vs batch.

Replays the placement decisions of a CA-TPA run on the Fig.-1 default
workload (paper parameters, seed 2016) and times every Eq.-(15) probe
twice on the *identical* partition state: once through the legacy
scalar path (one ``(K, K)`` candidate matrix and one Theorem-1 chain
per core — what every scheme did before the batch engine) and once
through the vectorized batch path (one broadcasted ``(M, K, K)`` stack,
one NumPy pass).  Each pair of probes is asserted bit-equal, so the
speedup is measured on provably equivalent work.

An end-to-end ``evaluate_point`` timing of all five schemes under both
implementations is reported alongside; it is diluted by the
probe-independent pipeline (task-set generation, sorting, bookkeeping)
and by the scalar path's lazy early-exit in the feasibility scans, so
its ratio is much smaller than the probe-engine ratio.

The third section pins the **incremental** backend: a daemon-style
placement loop (probe every pending task, place one, re-probe — the
coordinator's ``/place`` flush) timed under the batch and incremental
backends on identical work.  The batch path recomputes the full
``(pending, cores)`` grid every round; the incremental path answers
unchanged columns from the warm per-core Theorem-1 state, so only the
mutated core is fresh kernel work.

Results land in ``BENCH_partition.json`` at the repo root (schema in
docs/API.md).  The acceptance gate is the probe-engine throughput.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time

import numpy as np
from conftest import bench_sets

from repro.bench import run_placement_bench
from repro.experiments import default_schemes, evaluate_point
from repro.gen import WorkloadConfig, generate_taskset
from repro.model import Partition
from repro.partition import ordering
from repro.partition.probe import batch_probe, use_probe_implementation

REPO_ROOT = pathlib.Path(__file__).parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_partition.json"
SEED = 2016


def _replay_probe_timings(config: WorkloadConfig, sets: int):
    """Time scalar vs batch probes on identical replayed CA-TPA states."""
    rng = np.random.default_rng(SEED)
    probes = 0
    scalar_s = 0.0
    batch_s = 0.0
    for _ in range(sets):
        taskset = generate_taskset(config, rng)
        partition = Partition(taskset, config.cores)
        for task_index in ordering.by_contribution(taskset):
            with use_probe_implementation("batch"):
                start = time.perf_counter()
                new_utils = batch_probe(partition, task_index)
                batch_s += time.perf_counter() - start
            with use_probe_implementation("scalar"):
                start = time.perf_counter()
                scalar_utils = batch_probe(partition, task_index)
                scalar_s += time.perf_counter() - start
            np.testing.assert_array_equal(new_utils, scalar_utils)
            probes += 1
            # Greedy min-increment placement, as in Algorithm 1.
            finite = np.isfinite(new_utils)
            if not finite.any():
                break  # task set not schedulable; next set
            target = int(np.argmin(np.where(finite, new_utils, np.inf)))
            partition.assign(task_index, target)
    return probes, scalar_s, batch_s


def _timed_evaluate(implementation: str, config: WorkloadConfig, sets: int):
    with use_probe_implementation(implementation):
        start = time.perf_counter()
        stats = evaluate_point(config, sets=sets, seed=SEED, jobs=1)
        elapsed = time.perf_counter() - start
    return stats, elapsed


def test_probe_throughput(emit):
    config = WorkloadConfig()  # the Fig.-1 default point
    sets = bench_sets(60)

    probes, probe_scalar_s, probe_batch_s = _replay_probe_timings(config, sets)
    probe_speedup = probe_scalar_s / probe_batch_s

    e2e_batch, e2e_batch_s = _timed_evaluate("batch", config, sets)
    e2e_scalar, e2e_scalar_s = _timed_evaluate("scalar", config, sets)
    assert e2e_batch == e2e_scalar  # both paths: identical SchemeStats
    e2e_speedup = e2e_scalar_s / e2e_batch_s

    placement = run_placement_bench(sets=bench_sets(6), seed=SEED)

    payload = {
        "benchmark": "theorem1-probe-throughput",
        "workload": dataclasses.asdict(config),
        "sets": sets,
        "seed": SEED,
        "probe": {
            "count": probes,
            "scalar": {
                "seconds": probe_scalar_s,
                "probes_per_sec": probes / probe_scalar_s,
            },
            "batch": {
                "seconds": probe_batch_s,
                "probes_per_sec": probes / probe_batch_s,
            },
            "speedup": probe_speedup,
        },
        "placement": placement,
        "end_to_end": {
            "schemes": [spec.label for spec in default_schemes()],
            "scalar": {
                "seconds": e2e_scalar_s,
                "sets_per_sec": sets / e2e_scalar_s,
            },
            "batch": {
                "seconds": e2e_batch_s,
                "sets_per_sec": sets / e2e_batch_s,
            },
            "speedup": e2e_speedup,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "Theorem-1 probe engine throughput "
        f"(Fig.-1 default workload, {sets} task sets, seed {SEED})",
        "",
        f"Eq.-(15) probes on replayed CA-TPA states ({probes} probes, "
        f"{config.cores} cores each):",
        f"  {'path':<8} {'seconds':>10} {'probes/sec':>12}",
        f"  {'scalar':<8} {probe_scalar_s:>10.3f} "
        f"{probes / probe_scalar_s:>12.0f}",
        f"  {'batch':<8} {probe_batch_s:>10.3f} "
        f"{probes / probe_batch_s:>12.0f}",
        f"  speedup: {probe_speedup:.2f}x",
        "",
        "Placement loop (daemon /place flush shape, "
        f"{placement['sets']} sets, {placement['hypotheses']} hypotheses, "
        f"backlog {placement['task_count_range']}):",
        f"  {'path':<12} {'seconds':>10} {'probes/sec':>12}",
        f"  {'batch':<12} {placement['batch']['seconds']:>10.3f} "
        f"{placement['batch']['probes_per_sec']:>12.0f}",
        f"  {'incremental':<12} {placement['incremental']['seconds']:>10.3f} "
        f"{placement['incremental']['probes_per_sec']:>12.0f}",
        f"  speedup: {placement['speedup']:.2f}x",
        "",
        "End-to-end evaluate_point, 5 schemes, jobs=1 (diluted by the "
        "probe-independent pipeline):",
        f"  {'path':<8} {'seconds':>10} {'sets/sec':>12}",
        f"  {'scalar':<8} {e2e_scalar_s:>10.3f} {sets / e2e_scalar_s:>12.2f}",
        f"  {'batch':<8} {e2e_batch_s:>10.3f} {sets / e2e_batch_s:>12.2f}",
        f"  speedup: {e2e_speedup:.2f}x",
        "",
        f"[written to {RESULT_PATH.name}]",
    ]
    emit("probe_speed", "\n".join(lines))

    assert probe_speedup >= 3.0, (
        f"batch probe engine only {probe_speedup:.2f}x faster than scalar"
    )
    assert placement["speedup"] >= 3.0, (
        f"incremental backend only {placement['speedup']:.2f}x faster "
        f"than batch on the placement loop"
    )
