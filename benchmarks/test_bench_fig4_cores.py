"""Figure 4: impact of the number of processor cores M.

NSU fixes the *per-core* level-1 load, so more cores mean more
placement flexibility at the same relative load; Section IV-B reports
(mildly) improving schedulability with M and better balance for CA-TPA
than FFD/BFD.
"""

from conftest import run_figure

from repro.experiments import figure4_cores


def test_fig4_cores(benchmark, emit_artifact):
    result = benchmark.pedantic(
        lambda: run_figure(figure4_cores), rounds=1, iterations=1
    )
    emit_artifact("fig4_cores", result)

    ratios = result.series("sched_ratio")
    imb = result.series("imbalance")
    # CA-TPA stays within noise of the best scheme at every M...
    for i, cores in enumerate(result.definition.values):
        best = max(ratios[s][i] for s in ratios)
        assert ratios["ca-tpa"][i] >= best - 0.07, cores
        # ...and is more balanced than FFD wherever the comparison is
        # apples-to-apples.  Lambda is computed over *loaded* cores, so
        # once M is large enough that FFD leaves cores idle (M >= 32
        # here), FFD's tightly packed subset scores a low loaded-core
        # Lambda while its machine-wide spread is far worse; skip those.
        if cores < 32 and ratios["ca-tpa"][i] > 0.05 and ratios["ffd"][i] > 0.05:
            assert imb["ca-tpa"][i] <= imb["ffd"][i] + 0.05, cores
